(* Tests for cross-interface refinement (Section 7 future work). *)

module Refine = Wqi_refine.Refine
module Condition = Wqi_model.Condition
module Semantic_model = Wqi_model.Semantic_model

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let cond ?(domain = Condition.Text) name = Condition.make ~attribute:name domain

let test_learn_support () =
  let k =
    Refine.learn
      [ [ cond "Author"; cond "Title" ];
        [ cond "author:"; cond "Price" ];
        [ cond "Title" ] ]
  in
  let support l = List.assoc_opt l k.attribute_support in
  Alcotest.(check (option int)) "author merged" (Some 2) (support "author");
  Alcotest.(check (option int)) "title" (Some 2) (support "title");
  Alcotest.(check (option int)) "price" (Some 1) (support "price");
  check_bool "known" true (Refine.known k "AUTHOR:");
  check_bool "min support" false (Refine.known k ~min_support:2 "price");
  check_bool "unknown" false (Refine.known k "publisher")

let test_learn_duplicates_within_source () =
  (* Two identical attributes inside one source count once. *)
  let k = Refine.learn [ [ cond "Author"; cond "Author" ] ] in
  Alcotest.(check (option int)) "single support" (Some 1)
    (List.assoc_opt "author" k.attribute_support)

let test_similarity () =
  Alcotest.(check (float 0.001)) "equal" 1.0 (Refine.similarity "Author" "author:");
  check_bool "close labels" true (Refine.similarity "Departure city" "Departure" > 0.6);
  check_bool "unrelated" true (Refine.similarity "Author" "Price" < 0.3);
  Alcotest.(check (float 0.001)) "empty" 0.0 (Refine.similarity "" "Author")

let test_best_match () =
  let k = Refine.learn [ [ cond "Publisher"; cond "Author name" ] ] in
  Alcotest.(check (option string)) "suffix variation" (Some "publisher")
    (Refine.best_match k "Publishers");
  Alcotest.(check (option string)) "below threshold" None
    (Refine.best_match k "Zip code")

let test_recover_missing () =
  (* The attribute label sits to the RIGHT of the box (out of grammar);
     the parser misses it, the refiner recovers it from domain
     knowledge. *)
  let html = {|<form><input type="text" name="q"> Publisher</form>|} in
  let e = Wqi_core.Extractor.extract html in
  check_int "parser misses it" 0 (List.length (Wqi_core.Extractor.conditions e));
  let k = Refine.learn [ [ cond "Publisher"; cond "Author" ] ] in
  let refined = Refine.refine k e in
  (match refined.conditions with
   | [ c ] ->
     Alcotest.(check string) "attribute recovered" "publisher"
       (Condition.normalize_label c.attribute);
     check_bool "text domain" true (c.domain = Condition.Text)
   | cs -> Alcotest.failf "expected one recovered condition, got %d" (List.length cs));
  check_int "missing errors consumed" 0 (Semantic_model.missing_count refined)

let test_recover_requires_similarity () =
  (* An unclaimed label the domain has never seen stays missing. *)
  let html = {|<form><input type="text" name="q"> Flurbleworth</form>|} in
  let e = Wqi_core.Extractor.extract html in
  let k = Refine.learn [ [ cond "Author" ] ] in
  let refined = Refine.refine k e in
  check_int "nothing invented" 0 (List.length refined.conditions);
  check_bool "still missing" true (Semantic_model.missing_count refined > 0)

let test_recover_select_domain () =
  let html =
    {|<form><select name="f"><option>CD</option><option>Vinyl</option></select> Format</form>|}
  in
  let e = Wqi_core.Extractor.extract html in
  let k = Refine.learn [ [ cond "Format" ] ] in
  let refined = Refine.refine k e in
  match refined.conditions with
  | [ c ] ->
    (match c.domain with
     | Condition.Enumeration [ "CD"; "Vinyl" ] -> ()
     | d -> Alcotest.failf "wrong domain %a" Condition.pp_domain d)
  | cs -> Alcotest.failf "expected one condition, got %d" (List.length cs)

let test_conflict_resolution () =
  (* Craft a model with a conflict between a known and an unknown
     attribute; the unknown one is dropped. *)
  let known_c = cond "Adults" in
  let unknown_c = cond "Zorgle" in
  let model =
    { Semantic_model.conditions = [ known_c; unknown_c ];
      errors =
        [ Semantic_model.Conflict
            (3, Condition.to_string known_c, Condition.to_string unknown_c) ] }
  in
  let extraction =
    let e = Wqi_core.Extractor.extract "" in
    { e with model }
  in
  let k = Refine.learn [ [ cond "Adults"; cond "Children" ] ] in
  let refined = Refine.refine k extraction in
  check_int "one condition left" 1 (List.length refined.conditions);
  Alcotest.(check string) "known one kept" "adults"
    (Condition.normalize_label (List.hd refined.conditions).attribute);
  check_int "conflict consumed" 0 (Semantic_model.conflict_count refined)

let test_conflict_both_known_kept () =
  let a = cond "Adults" and b = cond "Children" in
  let model =
    { Semantic_model.conditions = [ a; b ];
      errors =
        [ Semantic_model.Conflict
            (1, Condition.to_string a, Condition.to_string b) ] }
  in
  let extraction =
    let e = Wqi_core.Extractor.extract "" in
    { e with model }
  in
  let k = Refine.learn [ [ cond "Adults"; cond "Children" ] ] in
  let refined = Refine.refine k extraction in
  check_int "both kept" 2 (List.length refined.conditions);
  check_int "conflict remains" 1 (Semantic_model.conflict_count refined)

let suite =
  [ ("learn support", `Quick, test_learn_support);
    ("learn dedups within source", `Quick, test_learn_duplicates_within_source);
    ("similarity", `Quick, test_similarity);
    ("best match", `Quick, test_best_match);
    ("recover missing", `Quick, test_recover_missing);
    ("recovery requires similarity", `Quick, test_recover_requires_similarity);
    ("recovered select domain", `Quick, test_recover_select_domain);
    ("conflict resolution", `Quick, test_conflict_resolution);
    ("conflict both known kept", `Quick, test_conflict_both_known_kept) ]
