(* Tests for operator canonicalization, domain analysis, and query
   formulation. *)

module Operator = Wqi_model.Operator
module Domain_analysis = Wqi_model.Domain_analysis
module Condition = Wqi_model.Condition
module Formulate = Wqi_core.Formulate

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- operator classification --- *)

let kind = Alcotest.testable Operator.pp Operator.equal

let test_operator_classify () =
  let cases =
    [ ("contains", Operator.Contains);
      ("Keyword search", Operator.Contains);
      ("contains all words", Operator.Contains_all);
      ("any of the words", Operator.Contains_any);
      ("Exact match", Operator.Equals);
      ("exact phrase", Operator.Equals);
      ("Start of last name", Operator.Starts_with);
      ("begins with", Operator.Starts_with);
      ("ends with", Operator.Ends_with);
      ("at most", Operator.Less_than);
      ("under", Operator.Less_than);
      ("at least", Operator.Greater_than);
      ("more than", Operator.Greater_than);
      ("between", Operator.Between);
      ("sounds like", Operator.Sounds_like) ]
  in
  List.iter
    (fun (wording, expected) ->
       Alcotest.check kind wording expected (Operator.classify wording))
    cases;
  Alcotest.check kind "unknown kept verbatim"
    (Operator.Unknown "zorble") (Operator.classify "zorble")

let test_operator_defaults () =
  Alcotest.check kind "text" Operator.Contains
    (Operator.default_for Condition.Text);
  Alcotest.check kind "enum" Operator.Equals
    (Operator.default_for (Condition.Enumeration [ "a" ]));
  Alcotest.check kind "range" Operator.Between
    (Operator.default_for (Condition.Range Condition.Text))

let test_operator_classify_all () =
  Alcotest.(check (list kind))
    "dedups by kind"
    [ Operator.Contains; Operator.Equals ]
    (Operator.classify_all [ "contains"; "exact"; "keyword" ])

(* --- domain analysis --- *)

let test_parse_bucket () =
  let b = Domain_analysis.parse_bucket "under $5" in
  Alcotest.(check (option (float 0.001))) "no low" None b.low;
  Alcotest.(check (option (float 0.001))) "high 5" (Some 5.) b.high;
  let b2 = Domain_analysis.parse_bucket "$5 to $20" in
  Alcotest.(check (option (float 0.001))) "low 5" (Some 5.) b2.low;
  Alcotest.(check (option (float 0.001))) "high 20" (Some 20.) b2.high;
  let b3 = Domain_analysis.parse_bucket "above $1,000" in
  Alcotest.(check (option (float 0.001))) "thousands separator" (Some 1000.)
    b3.low;
  let b4 = Domain_analysis.parse_bucket "any price" in
  check_bool "unbounded" true (b4.low = None && b4.high = None)

let test_analyze () =
  check_bool "text" true
    (Domain_analysis.analyze Condition.Text = Domain_analysis.Free_text);
  (match Domain_analysis.analyze (Condition.Enumeration [ "1"; "2"; "3" ]) with
   | Domain_analysis.Numeric_values [ 1.; 2.; 3. ] -> ()
   | _ -> Alcotest.fail "numeric enum");
  (match
     Domain_analysis.analyze
       (Condition.Enumeration [ "under $5"; "$5 to $20"; "above $20" ])
   with
   | Domain_analysis.Money_buckets _ -> ()
   | _ -> Alcotest.fail "money buckets");
  (match
     Domain_analysis.analyze (Condition.Enumeration [ "January"; "May" ])
   with
   | Domain_analysis.Month_names -> ()
   | _ -> Alcotest.fail "months");
  (match
     Domain_analysis.analyze (Condition.Enumeration [ "Red"; "Blue" ])
   with
   | Domain_analysis.Categorical [ "Red"; "Blue" ] -> ()
   | _ -> Alcotest.fail "categorical");
  match Domain_analysis.analyze (Condition.Range Condition.Text) with
  | Domain_analysis.Composite_range Domain_analysis.Free_text -> ()
  | _ -> Alcotest.fail "range recurses"

let test_covers () =
  let buckets =
    Domain_analysis.analyze
      (Condition.Enumeration [ "under $5"; "$5 to $20"; "above $20" ])
  in
  check_bool "3 covered" true (Domain_analysis.covers buckets 3.);
  check_bool "10 covered" true (Domain_analysis.covers buckets 10.);
  check_bool "50 covered" true (Domain_analysis.covers buckets 50.);
  let numeric = Domain_analysis.analyze (Condition.Enumeration [ "1"; "2" ]) in
  check_bool "listed" true (Domain_analysis.covers numeric 2.);
  check_bool "unlisted" false (Domain_analysis.covers numeric 3.)

(* --- formulation --- *)

let amazon = {|
<form>
<table>
<tr><td>Author:</td><td><input type="text" name="field-author"></td></tr>
<tr><td></td><td><input type="radio" name="mode" value="name-begins" checked> Start of last name<br>
<input type="radio" name="mode" value="name-exact"> Exact name</td></tr>
<tr><td>Format:</td><td><select name="fmt"><option>Hardcover</option><option>Paperback</option></select></td></tr>
<tr><td>Price:</td><td>from <input type="text" name="lo" size="6"> to <input type="text" name="hi" size="6"></td></tr>
</table>
</form>|}

let extraction () = Wqi_core.Extractor.extract amazon

let test_fillables () =
  let fs = Formulate.fillables (extraction ()) in
  check_int "three conditions bound" 3 (List.length fs);
  let author =
    List.find
      (fun (f : Formulate.fillable) ->
         Condition.normalize_label f.condition.attribute = "author")
      fs
  in
  check_int "author fields: textbox + 2 radios" 3 (List.length author.inputs)

let params = Alcotest.(list (pair string string))

let test_formulate_text_with_operator () =
  match
    Formulate.formulate (extraction ())
      [ { Formulate.attribute = "Author"; operator = Some "exact name";
          values = [ "tom clancy" ] } ]
  with
  | Ok p ->
    Alcotest.check params "author + operator radio"
      [ ("field-author", "tom clancy"); ("mode", "name-exact") ]
      p
  | Error e -> Alcotest.fail e

let test_formulate_enumeration () =
  match
    Formulate.formulate (extraction ())
      [ { Formulate.attribute = "format"; operator = None;
          values = [ "Paperback" ] } ]
  with
  | Ok p -> Alcotest.check params "select binding" [ ("fmt", "Paperback") ] p
  | Error e -> Alcotest.fail e

let test_formulate_range () =
  match
    Formulate.formulate (extraction ())
      [ { Formulate.attribute = "Price"; operator = None;
          values = [ "5"; "20" ] } ]
  with
  | Ok p ->
    Alcotest.check params "two bounds" [ ("lo", "5"); ("hi", "20") ] p
  | Error e -> Alcotest.fail e

let test_formulate_several_constraints () =
  match
    Formulate.formulate (extraction ())
      [ { Formulate.attribute = "Author"; operator = None;
          values = [ "king" ] };
        { Formulate.attribute = "Format"; operator = None;
          values = [ "Hardcover" ] } ]
  with
  | Ok p -> check_int "all params" 2 (List.length p)
  | Error e -> Alcotest.fail e

let test_formulate_errors () =
  let run c = Formulate.formulate (extraction ()) [ c ] in
  check_bool "unknown attribute" true
    (Result.is_error
       (run { Formulate.attribute = "Nope"; operator = None; values = [ "x" ] }));
  check_bool "unsupported operator" true
    (Result.is_error
       (run
          { Formulate.attribute = "Author"; operator = Some "sounds like";
            values = [ "x" ] }));
  check_bool "out-of-domain enum value" true
    (Result.is_error
       (run
          { Formulate.attribute = "Format"; operator = None;
            values = [ "Papyrus" ] }));
  check_bool "wrong arity for range" true
    (Result.is_error
       (run { Formulate.attribute = "Price"; operator = None; values = [ "5" ] }))

let test_formulate_datetime () =
  let html = {|
<form>Departing:
<select name="m"><option>January</option><option>June</option></select>
<select name="d"><option>1</option><option>15</option></select>
<select name="y"><option>2004</option><option>2005</option></select>
</form>|}
  in
  let e = Wqi_core.Extractor.extract html in
  match
    Formulate.formulate e
      [ { Formulate.attribute = "Departing"; operator = None;
          values = [ "June"; "15"; "2005" ] } ]
  with
  | Ok p ->
    Alcotest.check params "three components"
      [ ("m", "June"); ("d", "15"); ("y", "2005") ]
      p
  | Error e -> Alcotest.fail e

let suite =
  [ ("operator: classify", `Quick, test_operator_classify);
    ("operator: defaults", `Quick, test_operator_defaults);
    ("operator: classify_all dedups", `Quick, test_operator_classify_all);
    ("domain: parse bucket", `Quick, test_parse_bucket);
    ("domain: analyze", `Quick, test_analyze);
    ("domain: covers", `Quick, test_covers);
    ("formulate: fillables", `Quick, test_fillables);
    ("formulate: text with operator", `Quick, test_formulate_text_with_operator);
    ("formulate: enumeration", `Quick, test_formulate_enumeration);
    ("formulate: range", `Quick, test_formulate_range);
    ("formulate: several constraints", `Quick, test_formulate_several_constraints);
    ("formulate: errors", `Quick, test_formulate_errors);
    ("formulate: datetime", `Quick, test_formulate_datetime) ]
