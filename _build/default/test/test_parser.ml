(* Tests for the best-effort parser engine, using small synthetic
   grammars over fabricated token rows. *)

module G = Wqi_grammar
module Symbol = G.Symbol
module Instance = G.Instance
module Production = G.Production
module Preference = G.Preference
module Grammar = G.Grammar
module Bitset = G.Bitset
module Engine = Wqi_parser.Engine
module Token = Wqi_token.Token
module Geometry = Wqi_layout.Geometry
module R = G.Relation

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let t_text = Symbol.terminal "text"
let t_textbox = Symbol.terminal "textbox"
let nt = Symbol.nonterminal

(* A row of tokens, 30px apart. *)
let row kinds =
  List.mapi
    (fun i kind ->
       { Token.id = i; kind;
         box = Geometry.make ~x1:(i * 30) ~y1:0 ~x2:((i * 30) + 20) ~y2:10;
         sval = Printf.sprintf "t%d" i; name = ""; options = []; value = "";
         checked = false; multiple = false })
    kinds

(* L -> text | Left(L, text): the canonical recursive list. *)
let list_grammar ?(preferences = []) () =
  Grammar.make ~terminals:[ t_text ] ~start:(nt "L")
    ~productions:
      [ Production.make ~name:"L-base" ~head:(nt "L") ~components:[ t_text ] ();
        Production.make ~name:"L-rec" ~head:(nt "L")
          ~components:[ nt "L"; t_text ]
          ~guard:(fun arr -> R.left ~max_gap:15 arr.(0) arr.(1))
          () ]
    ~preferences ()

let longest_wins =
  Preference.make ~name:"longest" ~winner:(nt "L") ~loser:(nt "L")
    ~conflict:(fun a b -> Instance.subsumes a b)
    ~wins:(fun a b ->
        Bitset.cardinal a.Instance.cover > Bitset.cardinal b.Instance.cover)
    ()

let test_fixpoint_builds_all_sublists () =
  (* Without preferences, every contiguous sublist is derived: 3 tokens
     give 6 lists (the paper's Figure-8 ambiguity). *)
  let result =
    Engine.parse
      ~options:{ Engine.default_options with use_preferences = false }
      (list_grammar ()) (row [ Token.Text; Token.Text; Token.Text ])
  in
  let lists =
    List.filter (fun (i : Instance.t) -> Symbol.name i.sym = "L")
      result.Engine.all_live
  in
  check_int "all contiguous sublists" 6 (List.length lists)

let test_preference_prunes_sublists () =
  let result =
    Engine.parse (list_grammar ~preferences:[ longest_wins ] ())
      (row [ Token.Text; Token.Text; Token.Text ])
  in
  (* Only the full list and its build-chain descendants survive. *)
  let lists =
    List.filter (fun (i : Instance.t) -> Symbol.name i.sym = "L")
      result.Engine.all_live
  in
  check_int "maximal chain survives" 3 (List.length lists);
  check_int "one maximal tree" 1 (List.length result.Engine.maximal);
  check_bool "complete parse" true (result.Engine.complete <> None);
  check_bool "winner's descendants spared" true (result.Engine.stats.pruned > 0)

let test_descendants_never_killed () =
  let result =
    Engine.parse (list_grammar ~preferences:[ longest_wins ] ())
      (row [ Token.Text; Token.Text; Token.Text; Token.Text ])
  in
  match result.Engine.complete with
  | None -> Alcotest.fail "expected complete parse"
  | Some top ->
    let rec all_alive (i : Instance.t) =
      i.alive && List.for_all all_alive i.children
    in
    check_bool "whole winning derivation alive" true (all_alive top)

let test_maximal_subsumption () =
  (* Two tokens too far apart to chain: two maximal single-token trees. *)
  let tokens =
    [ { Token.id = 0; kind = Token.Text;
        box = Geometry.make ~x1:0 ~y1:0 ~x2:20 ~y2:10; sval = "a"; name = "";
        options = []; value = ""; checked = false; multiple = false };
      { Token.id = 1; kind = Token.Text;
        box = Geometry.make ~x1:500 ~y1:0 ~x2:520 ~y2:10; sval = "b";
        name = ""; options = []; value = ""; checked = false; multiple = false } ]
  in
  let result = Engine.parse (list_grammar ~preferences:[ longest_wins ] ()) tokens in
  check_int "two maximal trees" 2 (List.length result.Engine.maximal);
  check_bool "no complete parse" true (result.Engine.complete = None);
  List.iter
    (fun (t : Instance.t) ->
       check_int "singleton cover" 1 (Bitset.cardinal t.cover))
    result.Engine.maximal

let test_guards_respected () =
  (* A guard that rejects everything: only base lists are built. *)
  let g =
    Grammar.make ~terminals:[ t_text ] ~start:(nt "L")
      ~productions:
        [ Production.make ~name:"L-base" ~head:(nt "L") ~components:[ t_text ] ();
          Production.make ~name:"L-rec" ~head:(nt "L")
            ~components:[ nt "L"; t_text ]
            ~guard:(fun _ -> false)
            () ]
      ()
  in
  let result = Engine.parse g (row [ Token.Text; Token.Text ]) in
  check_int "only singletons" 2 (List.length result.Engine.maximal)

let test_cover_disjointness () =
  (* A pair production can never use the same token twice. *)
  let g =
    Grammar.make ~terminals:[ t_text ] ~start:(nt "P")
      ~productions:
        [ Production.make ~name:"pair" ~head:(nt "P")
            ~components:[ t_text; t_text ] () ]
      ()
  in
  let result = Engine.parse g (row [ Token.Text ]) in
  check_int "no pair from one token" 0
    (List.length
       (List.filter (fun (i : Instance.t) -> Symbol.name i.sym = "P")
          result.Engine.all_live))

let test_semantic_constructor_runs () =
  let g =
    Grammar.make ~terminals:[ t_text ] ~start:(nt "C")
      ~productions:
        [ Production.make ~name:"c" ~head:(nt "C") ~components:[ t_text ]
            ~build:(fun arr ->
                let tok = Option.get arr.(0).Instance.token in
                Instance.S_cond
                  (Wqi_model.Condition.make ~attribute:tok.Token.sval
                     Wqi_model.Condition.Text))
            () ]
      ()
  in
  let result = Engine.parse g (row [ Token.Text ]) in
  match result.Engine.maximal with
  | [ tree ] ->
    (match Instance.conditions tree with
     | [ c ] -> Alcotest.(check string) "built from token" "t0" c.attribute
     | _ -> Alcotest.fail "expected one condition")
  | _ -> Alcotest.fail "expected one tree"

let test_truncation () =
  let result =
    Engine.parse
      ~options:{ Engine.default_options with use_preferences = false;
                 max_instances = 12 }
      (list_grammar ())
      (row [ Token.Text; Token.Text; Token.Text; Token.Text; Token.Text ])
  in
  check_bool "truncated flagged" true result.Engine.stats.truncated;
  check_bool "bounded" true (result.Engine.stats.created <= 13)

let test_late_pruning_rollback () =
  (* With scheduling off, losers breed ancestors first; rollback must
     erase them and converge to the same surviving set. *)
  let tokens = row [ Token.Text; Token.Text; Token.Text ] in
  let jit = Engine.parse (list_grammar ~preferences:[ longest_wins ] ()) tokens in
  let late =
    Engine.parse
      ~options:{ Engine.default_options with use_scheduling = false }
      (list_grammar ~preferences:[ longest_wins ] ())
      tokens
  in
  check_int "same live count" jit.Engine.stats.live late.Engine.stats.live;
  check_int "same trees" (List.length jit.Engine.maximal)
    (List.length late.Engine.maximal);
  check_bool "late created at least as many" true
    (late.Engine.stats.created >= jit.Engine.stats.created)

let test_stats_consistency () =
  let result =
    Engine.parse (list_grammar ~preferences:[ longest_wins ] ())
      (row [ Token.Text; Token.Text; Token.Text ])
  in
  let s = result.Engine.stats in
  check_bool "live <= created" true (s.live <= s.created);
  check_bool "temporary <= created" true (s.temporary <= s.created);
  check_int "live matches list" s.live (List.length result.Engine.all_live)

let test_count_trees () =
  let result =
    Engine.parse
      ~options:{ Engine.default_options with use_preferences = false }
      (list_grammar ()) (row [ Token.Text; Token.Text ])
  in
  (* Complete interpretations of 2 tokens: [t0 t1] as one list. *)
  check_int "one complete tree" 1 (Engine.count_trees result)

let test_determinism () =
  let tokens = Wqi_token.Tokenize.of_html
      {|<form><table><tr><td>Author: <input type="text"></td></tr>
        <tr><td>Format: <select><option>a</option><option>b</option></select></td></tr>
        </table></form>|}
  in
  let g = Wqi_stdgrammar.Std.grammar in
  let r1 = Engine.parse g tokens in
  let r2 = Engine.parse g tokens in
  check_int "same created" r1.Engine.stats.created r2.Engine.stats.created;
  check_int "same live" r1.Engine.stats.live r2.Engine.stats.live;
  Alcotest.(check (list string)) "same maximal symbols"
    (List.map (fun (i : Instance.t) -> Symbol.name i.sym) r1.Engine.maximal)
    (List.map (fun (i : Instance.t) -> Symbol.name i.sym) r2.Engine.maximal)

let test_exhaustive_blowup () =
  (* Section 4.2.1: brute-force parsing yields strictly more instances
     and multiple complete trees on an operator-list fragment. *)
  let html = {|<form><table>
    <tr><td>Author:</td><td><input type="text" name="a"></td></tr>
    <tr><td></td><td><input type="radio" name="m"> starts with<br>
    <input type="radio" name="m"> exact name</td></tr></table></form>|}
  in
  let tokens = Wqi_token.Tokenize.of_html html in
  let g = Wqi_stdgrammar.Std.grammar in
  let best = Engine.parse g tokens in
  let exhaustive =
    Engine.parse
      ~options:{ Engine.default_options with use_preferences = false }
      g tokens
  in
  check_bool "blowup" true
    (exhaustive.Engine.stats.created > best.Engine.stats.created);
  check_bool "more trees without pruning" true
    (Engine.count_trees exhaustive >= Engine.count_trees best);
  check_bool "best-effort still complete" true (best.Engine.complete <> None)

let suite =
  [ ("fixpoint builds all sublists", `Quick, test_fixpoint_builds_all_sublists);
    ("preference prunes sublists", `Quick, test_preference_prunes_sublists);
    ("winner descendants spared", `Quick, test_descendants_never_killed);
    ("maximal subsumption", `Quick, test_maximal_subsumption);
    ("guards respected", `Quick, test_guards_respected);
    ("cover disjointness", `Quick, test_cover_disjointness);
    ("semantic constructor", `Quick, test_semantic_constructor_runs);
    ("truncation", `Quick, test_truncation);
    ("late pruning rollback", `Quick, test_late_pruning_rollback);
    ("stats consistency", `Quick, test_stats_consistency);
    ("count trees", `Quick, test_count_trees);
    ("determinism", `Quick, test_determinism);
    ("exhaustive blowup", `Quick, test_exhaustive_blowup) ]
