(* Tests for the synthetic corpus: PRNG, vocabularies, pattern templates,
   generator and datasets. *)

module Prng = Wqi_corpus.Prng
module Vocabulary = Wqi_corpus.Vocabulary
module Pattern = Wqi_corpus.Pattern
module Generator = Wqi_corpus.Generator
module Dataset = Wqi_corpus.Dataset

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- prng --- *)

let test_prng_determinism () =
  let a = Prng.create 42L and b = Prng.create 42L in
  let seq g = List.init 20 (fun _ -> Prng.int g 1000) in
  Alcotest.(check (list int)) "same stream" (seq a) (seq b)

let test_prng_bounds () =
  let g = Prng.create 1L in
  for _ = 1 to 1000 do
    let v = Prng.int g 7 in
    check_bool "in range" true (v >= 0 && v < 7)
  done;
  Alcotest.check_raises "zero bound"
    (Invalid_argument "Prng.int: bound must be positive") (fun () ->
        ignore (Prng.int g 0))

let test_prng_float () =
  let g = Prng.create 2L in
  for _ = 1 to 1000 do
    let v = Prng.float g 1.0 in
    check_bool "in [0,1)" true (v >= 0. && v < 1.)
  done

let test_prng_pick_weighted () =
  let g = Prng.create 3L in
  for _ = 1 to 100 do
    let v = Prng.weighted_pick g [ ("a", 0.0); ("b", 5.0) ] in
    Alcotest.(check string) "zero weight never picked" "b" v
  done

let test_prng_sample () =
  let g = Prng.create 4L in
  let items = [ 1; 2; 3; 4; 5 ] in
  let s = Prng.sample g 3 items in
  check_int "size" 3 (List.length s);
  check_int "distinct" 3 (List.length (List.sort_uniq compare s));
  check_bool "subset" true (List.for_all (fun x -> List.mem x items) s);
  (* Order preserved relative to the source list. *)
  check_bool "order preserved" true (List.sort compare s = s);
  Alcotest.(check (list int)) "oversample returns all" items
    (Prng.sample g 99 items)

let test_prng_split_independent () =
  let g = Prng.create 5L in
  let child = Prng.split g in
  check_bool "different streams" true (Prng.int g 1000000 <> Prng.int child 1000000 || Prng.int g 1000000 <> Prng.int child 1000000)

(* --- vocabulary --- *)

let test_vocabulary_well_formed () =
  check_int "three core domains" 3 (List.length Vocabulary.core_three);
  check_int "six new domains" 6 (List.length Vocabulary.new_six);
  check_bool "extended present" true (List.length Vocabulary.extended >= 6);
  List.iter
    (fun (d : Vocabulary.domain) ->
       check_bool (d.name ^ " has attributes") true
         (List.length d.attributes >= 5);
       List.iter
         (fun (a : Vocabulary.attribute) ->
            check_bool (d.name ^ "/" ^ a.label ^ " nonempty") true
              (String.length a.label > 0);
            match a.kind with
            | Vocabulary.Enum values | Vocabulary.Numeric values ->
              check_bool "enum values nonempty" true (List.length values >= 2)
            | Vocabulary.Free_text | Vocabulary.Money | Vocabulary.Date
            | Vocabulary.Time ->
              ())
         d.attributes)
    Vocabulary.all

let test_vocabulary_find () =
  Alcotest.(check string) "find books" "Books" (Vocabulary.find "Books").name;
  Alcotest.check_raises "missing" Not_found (fun () ->
      ignore (Vocabulary.find "Nope"))

(* --- patterns --- *)

let test_pattern_ranks () =
  check_int "25 in-vocabulary patterns" 25 (List.length Pattern.in_vocabulary);
  check_int "top rank" 1 (Pattern.rank Pattern.Attr_left_text);
  check_int "oog rank" 0 (Pattern.rank Pattern.Oog_double_box);
  check_bool "zipf monotone" true
    (Pattern.zipf_weight Pattern.Attr_left_text
     > Pattern.zipf_weight Pattern.Text_op_radio_right);
  check_bool "oog weight zero" true
    (Pattern.zipf_weight Pattern.Oog_image_label = 0.)

let test_pattern_render_all_applicable () =
  (* Every applicable (attribute, pattern) combination renders without
     raising and its truth carries the attribute's label or "". *)
  let g = Prng.create 11L in
  List.iter
    (fun (d : Vocabulary.domain) ->
       List.iter
         (fun (a : Vocabulary.attribute) ->
            List.iter
              (fun p ->
                 let field_seq = ref 0 in
                 let r = Pattern.render g ~field_seq a p in
                 check_bool "nodes nonempty" true (r.nodes <> []);
                 check_bool "pattern recorded" true (r.pattern = p))
              (Pattern.applicable a @ Pattern.applicable_oog a))
         d.attributes)
    Vocabulary.all

let test_pattern_not_applicable_raises () =
  let g = Prng.create 12L in
  let field_seq = ref 0 in
  let money_attr =
    List.find
      (fun (a : Vocabulary.attribute) -> a.kind = Vocabulary.Money)
      (Vocabulary.find "Books").attributes
  in
  check_bool "raises" true
    (try
       ignore (Pattern.render g ~field_seq money_attr Pattern.Date_mdy);
       false
     with Invalid_argument _ -> true)

let test_pattern_unique_field_names () =
  let g = Prng.create 13L in
  let field_seq = ref 0 in
  let attr =
    List.hd (Vocabulary.find "Books").attributes
  in
  let r1 = Pattern.render g ~field_seq attr Pattern.Attr_left_text in
  let r2 = Pattern.render g ~field_seq attr Pattern.Attr_left_text in
  let name nodes =
    let html = Wqi_html.Printer.fragment_to_string nodes in
    html
  in
  check_bool "distinct field names" true (name r1.nodes <> name r2.nodes)

(* --- generator --- *)

let books () = Vocabulary.find "Books"

let test_generator_deterministic () =
  let gen seed =
    Generator.generate (Prng.create seed) ~id:"x" ~domain:(books ())
      ~complexity:`Rich ~oog_prob:0.1 ()
  in
  let a = gen 99L and b = gen 99L in
  Alcotest.(check string) "same html" a.html b.html;
  check_int "same truth size" (List.length a.truth) (List.length b.truth)

let test_generator_truth_matches_conditions () =
  let s =
    Generator.generate (Prng.create 7L) ~id:"x" ~domain:(books ())
      ~complexity:`Rich ~oog_prob:0. ()
  in
  check_bool "2..8 conditions" true
    (List.length s.truth >= 2 && List.length s.truth <= 8);
  check_int "patterns recorded for each in-vocab condition"
    (List.length s.truth) (List.length s.patterns)

let test_generator_html_parses () =
  let s =
    Generator.generate (Prng.create 8L) ~id:"x" ~domain:(books ())
      ~complexity:`Rich ~oog_prob:0.2 ()
  in
  let tokens = Wqi_token.Tokenize.of_html s.html in
  check_bool "form produces tokens" true
    (List.length tokens >= 2 * List.length s.truth)

(* --- datasets --- *)

let test_dataset_sizes () =
  check_int "basic" 150 (List.length (Dataset.basic ()).sources);
  check_int "new source" 30 (List.length (Dataset.new_source ()).sources);
  check_int "new domain" 42 (List.length (Dataset.new_domain ()).sources);
  check_int "random" 30 (List.length (Dataset.random ()).sources)

let test_dataset_domains () =
  let domains_of (d : Dataset.t) =
    List.sort_uniq compare
      (List.map (fun (s : Generator.source) -> s.domain) d.sources)
  in
  Alcotest.(check (list string)) "basic domains"
    [ "Airfares"; "Automobiles"; "Books" ]
    (domains_of (Dataset.basic ()));
  check_int "new domains" 6 (List.length (domains_of (Dataset.new_domain ())));
  check_bool "random spans many domains" true
    (List.length (domains_of (Dataset.random ())) >= 8)

let test_dataset_reproducible () =
  let a = Dataset.random () and b = Dataset.random () in
  List.iter2
    (fun (x : Generator.source) (y : Generator.source) ->
       Alcotest.(check string) "same id" x.id y.id;
       Alcotest.(check string) "same html" x.html y.html)
    a.sources b.sources

let test_dataset_save () =
  let dir = Filename.temp_file "wqi" "" in
  Sys.remove dir;
  let ds = Dataset.new_source () in
  Dataset.save ~dir ds;
  check_bool "manifest written" true
    (Sys.file_exists (Filename.concat dir "NewSource/MANIFEST"));
  let html_files =
    Sys.readdir (Filename.concat dir "NewSource")
    |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".html")
  in
  check_int "one file per source" 30 (List.length html_files)

let suite =
  [ ("prng: determinism", `Quick, test_prng_determinism);
    ("prng: bounds", `Quick, test_prng_bounds);
    ("prng: float", `Quick, test_prng_float);
    ("prng: weighted pick", `Quick, test_prng_pick_weighted);
    ("prng: sample", `Quick, test_prng_sample);
    ("prng: split", `Quick, test_prng_split_independent);
    ("vocabulary: well formed", `Quick, test_vocabulary_well_formed);
    ("vocabulary: find", `Quick, test_vocabulary_find);
    ("pattern: ranks", `Quick, test_pattern_ranks);
    ("pattern: render all applicable", `Quick, test_pattern_render_all_applicable);
    ("pattern: inapplicable raises", `Quick, test_pattern_not_applicable_raises);
    ("pattern: unique field names", `Quick, test_pattern_unique_field_names);
    ("generator: deterministic", `Quick, test_generator_deterministic);
    ("generator: truth bookkeeping", `Quick, test_generator_truth_matches_conditions);
    ("generator: html parses", `Quick, test_generator_html_parses);
    ("dataset: sizes", `Quick, test_dataset_sizes);
    ("dataset: domains", `Quick, test_dataset_domains);
    ("dataset: reproducible", `Quick, test_dataset_reproducible);
    ("dataset: save", `Quick, test_dataset_save) ]
