(* Tests for conditions, semantic models, and the merger. *)

module Condition = Wqi_model.Condition
module Semantic_model = Wqi_model.Semantic_model
module Merger = Wqi_model.Merger

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let test_normalize_label () =
  check_str "lowercases" "author" (Condition.normalize_label "Author");
  check_str "strips colon" "author" (Condition.normalize_label "Author:");
  check_str "strips several" "title" (Condition.normalize_label "Title:*");
  check_str "collapses spaces" "book title"
    (Condition.normalize_label "  Book   Title ");
  check_str "keeps inner punctuation" "keyword(s)"
    (Condition.normalize_label "Keyword(s):")

let test_equal_attribute () =
  let a = Condition.make ~attribute:"Author:" Condition.Text in
  let b = Condition.make ~attribute:"author" Condition.Text in
  check_bool "modulo normalization" true (Condition.equal_attribute a b)

let test_domain_shape () =
  check_bool "text" true (Condition.same_domain_shape Condition.Text Condition.Text);
  check_bool "text vs datetime" false
    (Condition.same_domain_shape Condition.Text Condition.Datetime);
  check_bool "enum same length" true
    (Condition.same_domain_shape
       (Condition.Enumeration [ "a"; "b" ])
       (Condition.Enumeration [ "x"; "y" ]));
  check_bool "enum different length" false
    (Condition.same_domain_shape
       (Condition.Enumeration [ "a" ])
       (Condition.Enumeration [ "x"; "y" ]));
  check_bool "range recurses" true
    (Condition.same_domain_shape
       (Condition.Range Condition.Text)
       (Condition.Range Condition.Text));
  check_bool "range vs plain" false
    (Condition.same_domain_shape (Condition.Range Condition.Text) Condition.Text)

let test_matches () =
  let truth =
    Condition.make ~operators:[ "contains"; "starts with" ] ~attribute:"Title"
      Condition.Text
  in
  let hit =
    Condition.make
      ~operators:[ "Starts With"; "contains" ]
      ~attribute:"title:" Condition.Text
  in
  check_bool "operators order-insensitive" true (Condition.matches ~truth hit);
  let wrong_ops = Condition.make ~operators:[ "contains" ] ~attribute:"Title" Condition.Text in
  check_bool "missing operator fails" false (Condition.matches ~truth wrong_ops);
  let wrong_attr = Condition.make ~operators:truth.operators ~attribute:"Author" Condition.Text in
  check_bool "attribute mismatch fails" false (Condition.matches ~truth wrong_attr)

let test_pp () =
  let c =
    Condition.make ~operators:[ "between" ] ~attribute:"Price"
      (Condition.Range (Condition.Enumeration [ "$0"; "$10" ]))
  in
  check_str "printed" "[Price; {between}; range({\"$0\", \"$10\"})]"
    (Condition.to_string c)

(* --- merger --- *)

let cond name = Condition.make ~attribute:name Condition.Text

let all_tokens = List.init 6 (fun i -> (i, Printf.sprintf "token %d" i))

let test_merge_union () =
  let p1 =
    { Merger.conditions = [ (cond "a", [ 0; 1 ]) ]; cover = [ 0; 1 ] }
  in
  let p2 =
    { Merger.conditions = [ (cond "b", [ 2; 3 ]) ]; cover = [ 2; 3 ] }
  in
  let m = Merger.merge ~all_tokens [ p1; p2 ] in
  check_int "union of conditions" 2 (Semantic_model.condition_count m);
  check_int "missing tokens reported" 2 (Semantic_model.missing_count m);
  check_int "no conflicts" 0 (Semantic_model.conflict_count m)

let test_merge_dedup () =
  let p1 = { Merger.conditions = [ (cond "a", [ 0 ]) ]; cover = [ 0 ] } in
  let p2 =
    { Merger.conditions = [ (Condition.make ~attribute:"A:" Condition.Text, [ 0 ]) ];
      cover = [ 0 ] }
  in
  let m = Merger.merge ~all_tokens [ p1; p2 ] in
  check_int "equivalent conditions merged" 1 (Semantic_model.condition_count m)

let test_merge_conflict () =
  (* Two distinct conditions claiming token 2: the paper's Qaa example
     (passengers vs adults competing for the number selection). *)
  let p1 = { Merger.conditions = [ (cond "passengers", [ 1; 2 ]) ]; cover = [ 1; 2 ] } in
  let p2 = { Merger.conditions = [ (cond "adults", [ 2; 3 ]) ]; cover = [ 2; 3 ] } in
  let m = Merger.merge ~all_tokens [ p1; p2 ] in
  check_int "conflict reported" 1 (Semantic_model.conflict_count m);
  check_int "both conditions kept" 2 (Semantic_model.condition_count m)

let test_merge_ignorable () =
  let p = { Merger.conditions = [ (cond "a", [ 0 ]) ]; cover = [ 0 ] } in
  let m = Merger.merge ~all_tokens ~ignorable:(fun t -> t >= 1) [ p ] in
  check_int "ignorable suppressed" 0 (Semantic_model.missing_count m)

let test_merge_empty () =
  let m = Merger.merge ~all_tokens:[] [] in
  check_int "empty" 0 (Semantic_model.condition_count m);
  Alcotest.(check bool) "equals empty" true (m = Semantic_model.empty)

let test_error_pp () =
  check_str "conflict"
    "conflict on token 2: a vs b"
    (Fmt.str "%a" Semantic_model.pp_error (Semantic_model.Conflict (2, "a", "b")));
  check_str "missing" "missing token 1: x"
    (Fmt.str "%a" Semantic_model.pp_error (Semantic_model.Missing (1, "x")))

let suite =
  [ ("normalize label", `Quick, test_normalize_label);
    ("equal attribute", `Quick, test_equal_attribute);
    ("domain shape", `Quick, test_domain_shape);
    ("matches", `Quick, test_matches);
    ("condition printing", `Quick, test_pp);
    ("merger: union", `Quick, test_merge_union);
    ("merger: dedup", `Quick, test_merge_dedup);
    ("merger: conflict", `Quick, test_merge_conflict);
    ("merger: ignorable", `Quick, test_merge_ignorable);
    ("merger: empty", `Quick, test_merge_empty);
    ("error printing", `Quick, test_error_pp) ]
