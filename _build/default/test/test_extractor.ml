(* Tests for the extractor pipeline, the heuristic baseline, the survey
   analytics, and the evaluation driver. *)

module Extractor = Wqi_core.Extractor
module Condition = Wqi_model.Condition
module Semantic_model = Wqi_model.Semantic_model
module Baseline = Wqi_baseline.Baseline
module Survey = Wqi_survey.Survey
module Eval = Wqi_eval.Eval
module Metrics = Wqi_metrics.Metrics

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let simple_form =
  {|<form>
    <table>
    <tr><td>Author: <input type="text" name="a"></td></tr>
    <tr><td>Format: <select name="f"><option>CD</option><option>Vinyl</option></select></td></tr>
    </table><input type="submit" value="Go"></form>|}

let test_extract_simple () =
  let e = Extractor.extract simple_form in
  let attrs =
    List.map
      (fun (c : Condition.t) -> Condition.normalize_label c.attribute)
      (Extractor.conditions e)
  in
  Alcotest.(check (list string)) "conditions" [ "author"; "format" ] attrs

let test_diagnostics_populated () =
  let e = Extractor.extract simple_form in
  check_int "token count" 5 e.diagnostics.token_count;
  check_bool "some instances" true (e.diagnostics.parse_stats.created > 5);
  check_bool "tree count positive" true (e.diagnostics.tree_count >= 1);
  check_bool "parse time nonnegative" true (e.diagnostics.parse_seconds >= 0.)

let test_extract_empty_input () =
  let e = Extractor.extract "" in
  check_int "no tokens" 0 e.diagnostics.token_count;
  check_int "no conditions" 0 (List.length (Extractor.conditions e))

let test_extract_plain_text_page () =
  let e = Extractor.extract "<p>Just an article, no form at all.</p>" in
  check_int "no conditions" 0 (List.length (Extractor.conditions e))

let test_missing_reported () =
  (* A label convention the grammar does not know (label to the right)
     leaves tokens uncovered, which the merger must report. *)
  let e =
    Extractor.extract {|<form><input type="text" name="q"> Publisher</form>|}
  in
  check_bool "missing reported" true
    (Semantic_model.missing_count e.model > 0)

let test_custom_grammar_hook () =
  (* The extractor accepts any grammar; an empty-ish grammar yields no
     conditions but still runs end to end. *)
  let g =
    Wqi_grammar.Grammar.make
      ~terminals:Wqi_stdgrammar.Std.terminals
      ~start:(Wqi_grammar.Symbol.nonterminal "S")
      ~productions:
        [ Wqi_grammar.Production.make ~name:"s"
            ~head:(Wqi_grammar.Symbol.nonterminal "S")
            ~components:[ Wqi_grammar.Symbol.terminal "text" ]
            () ]
      ()
  in
  let e = Extractor.extract ~grammar:g simple_form in
  check_int "no conditions from trivial grammar" 0
    (List.length (Extractor.conditions e))

(* --- baseline --- *)

let test_baseline_simple () =
  let conds = Baseline.extract simple_form in
  check_bool "finds both fields" true (List.length conds = 2);
  let attrs = List.map (fun (c : Condition.t) -> Condition.normalize_label c.attribute) conds in
  check_bool "labels associated" true
    (List.mem "author" attrs && List.mem "format" attrs)

let test_baseline_groups_by_name () =
  let conds =
    Baseline.extract
      {|<form>Class: <input type="radio" name="c"> Economy <input type="radio" name="c"> Business</form>|}
  in
  match conds with
  | [ c ] ->
    (match c.domain with
     | Condition.Enumeration values ->
       Alcotest.(check (list string)) "values" [ "Economy"; "Business" ] values
     | _ -> Alcotest.fail "expected enumeration")
  | _ -> Alcotest.failf "expected one grouped condition, got %d" (List.length conds)

let test_baseline_no_operators () =
  (* The baseline cannot recognize operator lists — each radio group
     becomes its own enumeration condition instead. *)
  let amazon_author =
    {|<form><table>
      <tr><td>Author:</td><td><input type="text" name="a"></td></tr>
      <tr><td></td><td><input type="radio" name="m"> starts with
      <input type="radio" name="m"> exact name</td></tr></table></form>|}
  in
  let truth =
    [ Condition.make
        ~operators:[ "starts with"; "exact name" ]
        ~attribute:"Author" Condition.Text ]
  in
  let baseline_counts =
    Metrics.count ~truth ~extracted:(Baseline.extract amazon_author)
  in
  let parser_counts =
    Metrics.count ~truth
      ~extracted:(Extractor.conditions (Extractor.extract amazon_author))
  in
  check_int "baseline misses the operator condition" 0 baseline_counts.correct;
  check_int "parser gets it" 1 parser_counts.correct

(* --- survey --- *)

let test_survey_growth_monotone () =
  let ds = Wqi_corpus.Dataset.basic () in
  let occs = Survey.occurrences ds.sources in
  let curve = Survey.growth_curve occs in
  check_int "one point per source" 150 (List.length curve);
  let rec monotone = function
    | (_, a) :: ((_, b) :: _ as rest) -> a <= b && monotone rest
    | _ -> true
  in
  check_bool "monotone growth" true (monotone curve);
  let _, final = List.nth curve 149 in
  check_bool "converges below pattern universe" true
    (final <= List.length Wqi_corpus.Pattern.in_vocabulary);
  (* Flattening: the first third discovers most of the vocabulary. *)
  let _, third = List.nth curve 49 in
  check_bool "front-loaded discovery" true
    (float_of_int third >= 0.75 *. float_of_int final)

let test_survey_zipf_shape () =
  let ds = Wqi_corpus.Dataset.basic () in
  let freq = Survey.frequency_by_rank (Survey.occurrences ds.sources) in
  let totals = List.map (fun (_, t, _) -> t) freq in
  let rec descending = function
    | a :: (b :: _ as rest) -> a >= b && descending rest
    | _ -> true
  in
  check_bool "sorted by frequency" true (descending totals);
  match totals with
  | top :: _ ->
    let sum = List.fold_left ( + ) 0 totals in
    check_bool "head is heavy" true
      (float_of_int top >= 0.10 *. float_of_int sum)
  | [] -> Alcotest.fail "no patterns observed"

let test_survey_domain_reuse () =
  let ds = Wqi_corpus.Dataset.basic () in
  let news = Survey.domain_first_new_pattern (Survey.occurrences ds.sources) in
  match news with
  | (_, first) :: rest ->
    let later = List.fold_left (fun acc (_, n) -> acc + n) 0 rest in
    check_bool "later domains mostly reuse" true (later <= first)
  | [] -> Alcotest.fail "no domains"

(* --- eval driver --- *)

let test_eval_run () =
  let ds = Wqi_corpus.Dataset.new_source () in
  let small = { ds with sources = List.filteri (fun i _ -> i < 5) ds.sources } in
  let report = Eval.run small in
  check_int "one result per source" 5 (List.length report.results);
  check_bool "precision sane" true
    (report.avg_precision >= 0. && report.avg_precision <= 1.);
  check_bool "overall counts aggregated" true
    (report.overall.Metrics.truth
     = List.fold_left
         (fun acc (r : Eval.source_result) -> acc + r.counts.Metrics.truth)
         0 report.results)

let test_eval_distributions () =
  let ds = Wqi_corpus.Dataset.new_source () in
  let small = { ds with sources = List.filteri (fun i _ -> i < 5) ds.sources } in
  let report = Eval.run small in
  let dist = Eval.precision_distribution report in
  check_int "six thresholds" 6 (List.length dist);
  (* Monotone non-decreasing as thresholds fall. *)
  let rec non_decreasing = function
    | (_, a) :: ((_, b) :: _ as rest) -> a <= b && non_decreasing rest
    | _ -> true
  in
  check_bool "cumulative" true (non_decreasing dist);
  Alcotest.(check (float 0.001)) "threshold 0 is total" 100.
    (snd (List.nth dist 5))

let test_eval_custom_extractor () =
  let ds = Wqi_corpus.Dataset.new_source () in
  let small = { ds with sources = List.filteri (fun i _ -> i < 3) ds.sources } in
  let report = Eval.run ~extract:(fun _ -> []) small in
  Alcotest.(check (float 0.001)) "empty extractor recall" 0. report.avg_recall;
  Alcotest.(check (float 0.001)) "empty extractor precision" 1.
    report.avg_precision

let suite =
  [ ("extract simple form", `Quick, test_extract_simple);
    ("diagnostics populated", `Quick, test_diagnostics_populated);
    ("empty input", `Quick, test_extract_empty_input);
    ("formless page", `Quick, test_extract_plain_text_page);
    ("missing elements reported", `Quick, test_missing_reported);
    ("custom grammar hook", `Quick, test_custom_grammar_hook);
    ("baseline: simple form", `Quick, test_baseline_simple);
    ("baseline: groups by field name", `Quick, test_baseline_groups_by_name);
    ("baseline: misses operators", `Quick, test_baseline_no_operators);
    ("survey: growth monotone and flattening", `Quick, test_survey_growth_monotone);
    ("survey: zipf shape", `Quick, test_survey_zipf_shape);
    ("survey: domain reuse", `Quick, test_survey_domain_reuse);
    ("eval: run", `Quick, test_eval_run);
    ("eval: distributions", `Quick, test_eval_distributions);
    ("eval: custom extractor", `Quick, test_eval_custom_extractor) ]
