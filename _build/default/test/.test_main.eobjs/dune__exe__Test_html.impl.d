test/test_html.ml: Alcotest Fmt List Option Wqi_html
