test/test_model.ml: Alcotest Fmt List Printf Wqi_model
