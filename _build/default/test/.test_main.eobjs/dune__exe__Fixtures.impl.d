test/fixtures.ml: Wqi_model
