test/test_derive.ml: Alcotest List String Wqi_core Wqi_corpus Wqi_eval Wqi_grammar Wqi_stdgrammar
