test/test_stdgrammar.ml: Alcotest List Printf String Wqi_core Wqi_corpus Wqi_grammar Wqi_html Wqi_metrics Wqi_model Wqi_stdgrammar
