test/test_parser.ml: Alcotest Array List Option Printf Wqi_grammar Wqi_layout Wqi_model Wqi_parser Wqi_stdgrammar Wqi_token
