test/test_refine.ml: Alcotest List Wqi_core Wqi_model Wqi_refine
