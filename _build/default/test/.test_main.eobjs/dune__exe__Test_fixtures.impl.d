test/test_fixtures.ml: Alcotest Fixtures List String Wqi_core Wqi_metrics Wqi_model
