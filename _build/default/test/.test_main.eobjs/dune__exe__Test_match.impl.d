test/test_match.ml: Alcotest List String Wqi_core Wqi_corpus Wqi_match Wqi_model
