test/test_corpus.ml: Alcotest Array Filename List String Sys Wqi_corpus Wqi_html Wqi_token
