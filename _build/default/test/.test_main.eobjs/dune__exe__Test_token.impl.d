test/test_token.ml: Alcotest Fmt List Wqi_layout Wqi_token
