test/test_grammar.ml: Alcotest List Printf String Wqi_grammar Wqi_layout Wqi_model Wqi_token
