test/test_layout.ml: Alcotest List Option Printf String Wqi_html Wqi_layout
