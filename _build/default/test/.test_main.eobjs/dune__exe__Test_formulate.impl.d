test/test_formulate.ml: Alcotest List Result Wqi_core Wqi_model
