test/test_metrics.ml: Alcotest Wqi_metrics Wqi_model
