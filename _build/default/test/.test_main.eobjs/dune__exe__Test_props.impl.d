test/test_props.ml: Fmt Fun Int64 List Printf QCheck QCheck_alcotest String Wqi_core Wqi_corpus Wqi_grammar Wqi_html Wqi_layout Wqi_model Wqi_parser Wqi_stdgrammar Wqi_token
