test/test_extractor.ml: Alcotest List Wqi_baseline Wqi_core Wqi_corpus Wqi_eval Wqi_grammar Wqi_metrics Wqi_model Wqi_stdgrammar Wqi_survey
