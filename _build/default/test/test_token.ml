(* Tests for the tokenizer front-end. *)

module Token = Wqi_token.Token
module Tokenize = Wqi_token.Tokenize

let kinds tokens = List.map (fun (t : Token.t) -> t.kind) tokens

let kind = Alcotest.testable (Fmt.of_to_string Token.kind_name) ( = )

let test_classification () =
  let tokens =
    Tokenize.of_html
      {|<form>Find <input type="text" name="q"> <select name="s"><option>a</option></select>
        <input type="radio" name="r"> <input type="checkbox" name="c">
        <input type="submit" value="Go"> <img src="x.gif" alt="logo"> <textarea name="t"></textarea></form>|}
  in
  Alcotest.(check (list kind))
    "kinds in reading order"
    [ Token.Text; Token.Textbox; Token.Selection; Token.Radio; Token.Checkbox;
      Token.Button; Token.Image; Token.Textbox ]
    (kinds tokens)

let test_ids_dense () =
  let tokens = Tokenize.of_html "<p>a <input type=\"text\"> b</p>" in
  List.iteri
    (fun i (t : Token.t) -> Alcotest.(check int) "dense id" i t.id)
    tokens

let test_select_options () =
  match Tokenize.of_html {|<select name="p"><option>under $5</option><option> $5 to $20 </option><option></option></select>|} with
  | [ t ] ->
    Alcotest.(check (list string))
      "trimmed, empties dropped"
      [ "under $5"; "$5 to $20" ]
      t.options;
    Alcotest.(check string) "name" "p" t.name
  | _ -> Alcotest.fail "expected one token"

let test_checked_and_multiple () =
  (match Tokenize.of_html {|<input type="checkbox" checked>|} with
   | [ t ] -> Alcotest.(check bool) "checked" true t.checked
   | _ -> Alcotest.fail "one token");
  match Tokenize.of_html {|<select multiple><option>a</option></select>|} with
  | [ t ] -> Alcotest.(check bool) "multiple" true t.multiple
  | _ -> Alcotest.fail "one token"

let test_hidden_skipped () =
  Alcotest.(check int)
    "hidden produces nothing" 0
    (List.length (Tokenize.of_html {|<input type="hidden" name="sid" value="1">|}))

let test_button_svals () =
  let tokens =
    Tokenize.of_html
      {|<input type="submit" value="Search Now"><button> Press me </button><input type="image" alt="go" src="b.gif">|}
  in
  Alcotest.(check (list string))
    "labels" [ "Search Now"; "Press me"; "go" ]
    (List.map (fun (t : Token.t) -> t.sval) tokens)

let test_is_field () =
  let t kind =
    { Token.id = 0; kind; box = Wqi_layout.Geometry.origin; sval = "";
      name = ""; options = []; value = ""; checked = false; multiple = false }
  in
  Alcotest.(check bool) "textbox" true (Token.is_field (t Token.Textbox));
  Alcotest.(check bool) "radio" true (Token.is_field (t Token.Radio));
  Alcotest.(check bool) "text" false (Token.is_field (t Token.Text));
  Alcotest.(check bool) "button" false (Token.is_field (t Token.Button))

let test_describe () =
  match Tokenize.of_html {|Author: <select name="fmt"><option>a</option></select>|} with
  | [ text; select ] ->
    Alcotest.(check string) "text" {|text "Author:"|} (Token.describe text);
    Alcotest.(check string) "select" {|selection list "fmt"|}
      (Token.describe select)
  | _ -> Alcotest.fail "two tokens"

let test_text_trimmed_nonempty () =
  let tokens = Tokenize.of_html "<p> \n </p><p> x </p>" in
  match tokens with
  | [ t ] -> Alcotest.(check string) "trimmed" "x" t.sval
  | _ -> Alcotest.fail "whitespace-only runs are dropped"

let suite =
  [ ("classification", `Quick, test_classification);
    ("dense ids", `Quick, test_ids_dense);
    ("select options", `Quick, test_select_options);
    ("checked and multiple", `Quick, test_checked_and_multiple);
    ("hidden skipped", `Quick, test_hidden_skipped);
    ("button labels", `Quick, test_button_svals);
    ("is_field", `Quick, test_is_field);
    ("describe", `Quick, test_describe);
    ("whitespace-only dropped", `Quick, test_text_trimmed_nonempty) ]
