(* Tests for grammar derivation from observed pattern samples. *)

module Derive = Wqi_eval.Derive
module Pattern = Wqi_corpus.Pattern
module Grammar = Wqi_grammar.Grammar

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_every_pattern_mapped () =
  List.iter
    (fun p ->
       check_bool (Pattern.name p) true (Derive.productions_for p <> []))
    Pattern.in_vocabulary;
  List.iter
    (fun p ->
       check_bool (Pattern.name p) true (Derive.productions_for p = []))
    Pattern.out_of_grammar

let test_mapped_productions_exist () =
  let std_names =
    List.map
      (fun (p : Wqi_grammar.Production.t) -> p.name)
      Wqi_stdgrammar.Std.grammar.productions
  in
  List.iter
    (fun pattern ->
       List.iter
         (fun name ->
            check_bool
              (Pattern.name pattern ^ " -> " ^ name)
              true (List.mem name std_names))
         (Derive.productions_for pattern))
    Pattern.in_vocabulary

let test_derived_grammars_validate () =
  (* Every single-pattern grammar and the all-pattern grammar must be
     well-formed and schedulable. *)
  List.iter
    (fun p ->
       let g = Derive.grammar_for_patterns [ p ] in
       (match Grammar.validate g with
        | Ok () -> ()
        | Error errs ->
          Alcotest.failf "%s: %s" (Pattern.name p) (String.concat "; " errs));
       ignore (Wqi_grammar.Schedule.build g))
    Pattern.in_vocabulary;
  let full = Derive.grammar_for_patterns Pattern.in_vocabulary in
  check_bool "full derivation validates" true (Grammar.validate full = Ok ())

let test_full_derivation_covers_std () =
  (* Deriving from all patterns recovers (almost) the whole standard
     grammar. *)
  let full = Derive.grammar_for_patterns Pattern.in_vocabulary in
  let _, _, std_prods, _ = Grammar.stats Wqi_stdgrammar.Std.grammar in
  let _, _, full_prods, _ = Grammar.stats full in
  check_bool "derivation nearly complete" true
    (full_prods >= std_prods - 2 && full_prods <= std_prods)

let test_subgrammar_still_extracts () =
  (* A grammar derived from only the text patterns still parses a
     text-only form completely. *)
  let g = Derive.grammar_for_patterns [ Pattern.Attr_left_text ] in
  let e =
    Wqi_core.Extractor.extract ~grammar:g
      {|<form><p>Author: <input type="text" name="a"></p><p>Title: <input type="text" name="t"></p></form>|}
  in
  check_int "both conditions" 2 (List.length (Wqi_core.Extractor.conditions e))

let test_subgrammar_misses_unknown_patterns () =
  (* The same text-only grammar cannot interpret a selection condition. *)
  let g = Derive.grammar_for_patterns [ Pattern.Attr_left_text ] in
  let e =
    Wqi_core.Extractor.extract ~grammar:g
      {|<form>Format: <select name="f"><option>CD</option><option>LP</option></select></form>|}
  in
  check_int "nothing extracted" 0 (List.length (Wqi_core.Extractor.conditions e))

let test_grammar_from_sources_monotone () =
  let basic = Wqi_corpus.Dataset.basic () in
  let size n =
    let training = List.filteri (fun i _ -> i < n) basic.sources in
    let _, _, prods, _ =
      Grammar.stats (Derive.grammar_from_sources training)
    in
    prods
  in
  check_bool "more sources, at least as many productions" true
    (size 5 <= size 50 && size 50 <= size 150)

let suite =
  [ ("every pattern mapped", `Quick, test_every_pattern_mapped);
    ("mapped productions exist", `Quick, test_mapped_productions_exist);
    ("derived grammars validate", `Quick, test_derived_grammars_validate);
    ("full derivation covers std", `Quick, test_full_derivation_covers_std);
    ("subgrammar still extracts", `Quick, test_subgrammar_still_extracts);
    ("subgrammar misses unknown patterns", `Quick,
     test_subgrammar_misses_unknown_patterns);
    ("derivation monotone in sample", `Quick, test_grammar_from_sources_monotone) ]
