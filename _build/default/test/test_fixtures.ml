(* Integration tests over hand-written replicas of real 2004-era query
   interfaces (see fixtures.ml). *)

module Metrics = Wqi_metrics.Metrics

let score (f : Fixtures.fixture) =
  let extraction = Wqi_core.Extractor.extract f.html in
  let extracted = Wqi_core.Extractor.conditions extraction in
  let counts = Metrics.count ~truth:f.truth ~extracted in
  (extraction, extracted, counts)

let fixture_case (f : Fixtures.fixture) =
  ( f.name,
    `Quick,
    fun () ->
      let _, extracted, counts = score f in
      let p = Metrics.precision counts and r = Metrics.recall counts in
      if p < f.min_precision || r < f.min_recall then
        Alcotest.failf
          "%s: precision %.2f (floor %.2f), recall %.2f (floor %.2f)@.truth: %s@.extracted: %s"
          f.name p f.min_precision r f.min_recall
          (String.concat "; "
             (List.map Wqi_model.Condition.to_string f.truth))
          (String.concat "; "
             (List.map Wqi_model.Condition.to_string extracted)) )

let test_aggregate_floor () =
  (* Across all fixtures the extractor must reach the paper's headline
     0.85 accuracy on this hand-written, out-of-distribution set. *)
  let overall =
    List.fold_left
      (fun acc f ->
         let _, _, counts = score f in
         Metrics.add acc counts)
      Metrics.zero Fixtures.all
  in
  let p = Metrics.precision overall and r = Metrics.recall overall in
  let accuracy = Metrics.accuracy ~precision:p ~recall:r in
  if accuracy < 0.85 then
    Alcotest.failf "aggregate accuracy %.3f (P %.3f, R %.3f) below 0.85"
      accuracy p r

let test_fixtures_deterministic () =
  List.iter
    (fun (f : Fixtures.fixture) ->
       let run () =
         List.map Wqi_model.Condition.to_string
           (Wqi_core.Extractor.conditions (Wqi_core.Extractor.extract f.html))
       in
       Alcotest.(check (list string)) f.name (run ()) (run ()))
    Fixtures.all

let suite =
  List.map fixture_case Fixtures.all
  @ [ ("aggregate accuracy >= 0.85", `Quick, test_aggregate_floor);
      ("deterministic", `Quick, test_fixtures_deterministic) ]
