type t = {
  name : string;
  sources : Generator.source list;
}

let generate_for g ~prefix ~domain ~count ~complexity ~oog_prob ~header_prob =
  List.init count (fun i ->
      Generator.generate g
        ~id:(Printf.sprintf "%s-%s-%03d" prefix domain.Vocabulary.name (i + 1))
        ~domain ~complexity ~oog_prob ~header_prob ())

let basic () =
  let g = Prng.create 0x5349474D4F442004L in
  { name = "Basic";
    sources =
      List.concat_map
        (fun domain ->
           generate_for g ~prefix:"basic" ~domain ~count:50 ~complexity:`Rich
             ~oog_prob:0.10 ~header_prob:0.20)
        Vocabulary.core_three }

let new_source () =
  let g = Prng.create 0x4E45575352432004L in
  { name = "NewSource";
    sources =
      List.concat_map
        (fun domain ->
           generate_for g ~prefix:"newsrc" ~domain ~count:10
             ~complexity:`Simple ~oog_prob:0.04 ~header_prob:0.03)
        Vocabulary.core_three }

let new_domain () =
  let g = Prng.create 0x4E4557444F4D2004L in
  { name = "NewDomain";
    sources =
      List.concat_map
        (fun domain ->
           let complexity = if Prng.bool g then `Simple else `Rich in
           generate_for g ~prefix:"newdom" ~domain ~count:7 ~complexity
             ~oog_prob:0.13 ~header_prob:0.10)
        Vocabulary.new_six }

let random () =
  let g = Prng.create 0x52414E444F4D2004L in
  let pool = Vocabulary.all in
  { name = "Random";
    sources =
      List.init 30 (fun i ->
          let domain = Prng.pick g pool in
          let complexity = if Prng.bernoulli g 0.7 then `Simple else `Rich in
          Generator.generate g
            ~id:(Printf.sprintf "random-%03d" (i + 1))
            ~domain ~complexity ~oog_prob:0.20 ~header_prob:0.12 ()) }

let all () = [ basic (); new_source (); new_domain (); random () ]

let save ~dir t =
  let dataset_dir = Filename.concat dir t.name in
  let rec mkdir_p path =
    if not (Sys.file_exists path) then begin
      mkdir_p (Filename.dirname path);
      (try Sys.mkdir path 0o755 with Sys_error _ -> ())
    end
  in
  mkdir_p dataset_dir;
  let manifest = Buffer.create 1024 in
  List.iter
    (fun (s : Generator.source) ->
       let file = Filename.concat dataset_dir (s.id ^ ".html") in
       let oc = open_out file in
       output_string oc s.html;
       close_out oc;
       Buffer.add_string manifest (Printf.sprintf "## %s (%s)\n" s.id s.domain);
       List.iter
         (fun c ->
            Buffer.add_string manifest
              ("  " ^ Wqi_model.Condition.to_string c ^ "\n"))
         s.truth)
    t.sources;
  let oc = open_out (Filename.concat dataset_dir "MANIFEST") in
  output_string oc (Buffer.contents manifest);
  close_out oc
