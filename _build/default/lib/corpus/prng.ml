type t = { mutable state : int64 }

let create seed = { state = seed }

let golden_gamma = 0x9E3779B97F4A7C15L

let next_int64 g =
  g.state <- Int64.add g.state golden_gamma;
  let z = g.state in
  let z =
    Int64.mul
      (Int64.logxor z (Int64.shift_right_logical z 30))
      0xBF58476D1CE4E5B9L
  in
  let z =
    Int64.mul
      (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94D049BB133111EBL
  in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split g = create (next_int64 g)

let int g bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  let raw = Int64.to_int (Int64.shift_right_logical (next_int64 g) 2) in
  raw mod bound

let float g bound =
  let raw = Int64.to_float (Int64.shift_right_logical (next_int64 g) 11) in
  bound *. (raw /. 9007199254740992.0) (* 2^53 *)

let bool g = Int64.logand (next_int64 g) 1L = 1L

let bernoulli g p = float g 1.0 < p

let pick g = function
  | [] -> invalid_arg "Prng.pick: empty list"
  | items -> List.nth items (int g (List.length items))

let weighted_pick g weighted =
  let total = List.fold_left (fun acc (_, w) -> acc +. max 0. w) 0. weighted in
  if total <= 0. then invalid_arg "Prng.weighted_pick: no positive weight";
  let target = float g total in
  let rec go acc = function
    | [] -> invalid_arg "Prng.weighted_pick: empty list"
    | [ (x, _) ] -> x
    | (x, w) :: rest ->
      let acc = acc +. max 0. w in
      if target < acc then x else go acc rest
  in
  go 0. weighted

let shuffle g items =
  let arr = Array.of_list items in
  for i = Array.length arr - 1 downto 1 do
    let j = int g (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done;
  Array.to_list arr

let sample g k items =
  let n = List.length items in
  let k = min k n in
  let chosen = shuffle g (List.init n Fun.id) in
  let keep =
    List.sort_uniq compare (List.filteri (fun i _ -> i < k) chosen)
  in
  List.filteri (fun i _ -> List.mem i keep) items
