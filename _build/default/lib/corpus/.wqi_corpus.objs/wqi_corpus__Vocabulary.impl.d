lib/corpus/vocabulary.ml: List
