lib/corpus/generator.ml: List Pattern Prng Vocabulary Wqi_html Wqi_model
