lib/corpus/generator.mli: Pattern Prng Vocabulary Wqi_model
