lib/corpus/vocabulary.mli:
