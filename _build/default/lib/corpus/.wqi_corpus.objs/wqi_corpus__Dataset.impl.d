lib/corpus/dataset.ml: Buffer Filename Generator List Printf Prng Sys Vocabulary Wqi_model
