lib/corpus/pattern.ml: Float List Option Printf Prng String Vocabulary Wqi_html Wqi_model
