lib/corpus/pattern.mli: Prng Vocabulary Wqi_html Wqi_model
