lib/corpus/prng.ml: Array Fun Int64 List
