lib/corpus/prng.mli:
