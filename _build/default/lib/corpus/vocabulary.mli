(** Domain vocabularies for the synthetic corpus.

    Each Web-source domain (Books, Automobiles, Airfares, ...) carries a
    pool of queryable attributes with their value kinds; the generator
    draws a form's conditions from this pool.  The three core domains are
    the paper's survey domains; the extended list covers its NewDomain
    and Random datasets (invisible-web.net spanned 18 top-level
    categories, of which the paper's random sample hit 16). *)

type value_kind =
  | Free_text                (** keyword-searchable text *)
  | Enum of string list      (** closed categorical values *)
  | Money                    (** price-like; range patterns apply *)
  | Numeric of string list   (** numeric choice values (years, counts) *)
  | Date
  | Time

type attribute = {
  label : string;             (** canonical label, e.g. "Author" *)
  variants : string list;     (** presentation variants, e.g. "Author:",
                                  "Author name" *)
  kind : value_kind;
}

type domain = {
  name : string;
  attributes : attribute list;
}

val core_three : domain list
(** Books, Automobiles, Airfares — the Basic-dataset domains. *)

val new_six : domain list
(** Movies, Music, Hotels, CarRentals, Jobs, RealEstates — the
    NewDomain-dataset domains. *)

val extended : domain list
(** Additional domains used only by the Random dataset. *)

val all : domain list

val find : string -> domain
(** Lookup by name; raises [Not_found]. *)
