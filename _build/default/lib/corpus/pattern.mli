(** Condition-pattern templates: the presentation vocabulary.

    The paper's survey found ~25 condition patterns across 150 sources
    (21 occurring more than once), with Zipf-distributed frequencies.
    Each template renders one query condition as HTML markup plus its
    ground-truth semantic model entry.  Three additional *out-of-grammar*
    templates model the unconventional layouts real sources occasionally
    use; they are what keeps extraction accuracy below 1.0. *)

type id =
  (* In-vocabulary patterns, by descending conventional frequency. *)
  | Attr_left_text        (** "Author: [__]" *)
  | Attr_left_select      (** "Format: [v]" *)
  | Attr_above_text
  | Attr_above_select
  | Enum_radio_h          (** "Class: ( ) economy ( ) business" *)
  | Solo_checkbox         (** "[x] Hardcover only" *)
  | Date_mdy              (** "Departing: [m][d][y]" *)
  | Range_text_from_to    (** "Price: from [__] to [__]" *)
  | Text_op_radio_below   (** amazon author: ops under the textbox *)
  | Keyword_bare          (** "[________] (Search)" *)
  | Enum_checkbox_h
  | Text_op_select_left   (** "Title [contains|starts...|] [__]" *)
  | Range_select          (** "Year: from [v] to [v]" *)
  | Enum_radio_v          (** vertical radio enumeration *)
  | Multi_select          (** attr above a multi-select list box *)
  | Enum_radio_bare       (** "( ) Round trip ( ) One way" *)
  | Date_my               (** month/year pair *)
  | Time_sel              (** hour/minute pair *)
  | Range_text_to_only    (** "Price: [__] to [__]" *)
  | Textarea_keyword
  | Attr_below_text
  | Text_op_radio_right
  | Attr_text_unit        (** "Mileage: [__] miles" — trailing unit *)
  | Text_op_checkbox      (** "[x] exact match [x] whole words" modifiers *)
  | Text_op_select_right  (** "Title: [__] [contains|...]" *)
  (* Out-of-grammar noise patterns. *)
  | Oog_attr_right_text   (** "[__] Author" — label on the right *)
  | Oog_attr_right_select (** "[v] Format" — label right of a select *)
  | Oog_image_label       (** an image carries the attribute label *)
  | Oog_double_box        (** "City, State: [__] [__]" — one condition,
                              two unmarked boxes *)

type rendering = {
  nodes : Wqi_html.Dom.t list;   (** markup for this condition *)
  truth : Wqi_model.Condition.t;
  pattern : id;
}

val in_vocabulary : id list
(** The 25 conventional patterns, most-frequent first (the paper's
    survey found 25 patterns overall, 21 occurring more than once). *)

val out_of_grammar : id list

val name : id -> string
val rank : id -> int
(** 1-based conventional-frequency rank (1 = most frequent); used as the
    Zipf weight source.  Out-of-grammar patterns have rank 0. *)

val zipf_weight : id -> float
(** [1 / rank^0.95] for in-vocabulary patterns; 0 for out-of-grammar. *)

val applicable : Vocabulary.attribute -> id list
(** In-vocabulary patterns that can render the given attribute. *)

val applicable_oog : Vocabulary.attribute -> id list

val render :
  Prng.t -> field_seq:int ref -> Vocabulary.attribute -> id -> rendering
(** [render g ~field_seq attr id] produces markup and ground truth;
    raises [Invalid_argument] when [id] is not applicable to [attr].
    [field_seq] provides unique form-field names. *)
