(** Deterministic pseudo-random generator (splitmix64).

    Every dataset in the experiments is generated from a fixed seed so
    that all tables and figures are exactly reproducible; library code
    never touches the global [Random] state. *)

type t

val create : int64 -> t
(** [create seed] — equal seeds give equal streams. *)

val split : t -> t
(** An independent generator derived from the current state. *)

val int : t -> int -> int
(** [int g bound] draws uniformly from [0, bound)].  [bound > 0]. *)

val float : t -> float -> float
(** [float g bound] draws uniformly from [0, bound)]. *)

val bool : t -> bool

val bernoulli : t -> float -> bool
(** [bernoulli g p] is true with probability [p]. *)

val pick : t -> 'a list -> 'a
(** Uniform choice; raises [Invalid_argument] on an empty list. *)

val weighted_pick : t -> ('a * float) list -> 'a
(** Choice proportional to the (positive) weights. *)

val sample : t -> int -> 'a list -> 'a list
(** [sample g k items] draws [min k (length items)] distinct items,
    preserving their original relative order. *)

val shuffle : t -> 'a list -> 'a list
