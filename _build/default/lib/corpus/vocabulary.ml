type value_kind =
  | Free_text
  | Enum of string list
  | Money
  | Numeric of string list
  | Date
  | Time

type attribute = {
  label : string;
  variants : string list;
  kind : value_kind;
}

type domain = {
  name : string;
  attributes : attribute list;
}

let attribute ?(variants = []) label kind = { label; variants; kind }

let years lo hi =
  List.init (hi - lo + 1) (fun i -> string_of_int (hi - i))

let counts lo hi = List.init (hi - lo + 1) (fun i -> string_of_int (lo + i))

(* ------------------------------------------------------------------ *)
(* The three survey domains                                            *)
(* ------------------------------------------------------------------ *)

let books =
  { name = "Books";
    attributes =
      [ attribute "Author" ~variants:[ "Author:"; "Author name"; "Written by" ]
          Free_text;
        attribute "Title" ~variants:[ "Title:"; "Book title"; "Title word(s)" ]
          Free_text;
        attribute "Keyword" ~variants:[ "Keywords"; "Keyword(s):"; "Search for" ]
          Free_text;
        attribute "ISBN" ~variants:[ "ISBN:"; "ISBN number" ] Free_text;
        attribute "Publisher" ~variants:[ "Publisher:" ] Free_text;
        attribute "Subject" ~variants:[ "Subject:"; "Category" ]
          (Enum
             [ "Arts"; "Biography"; "Business"; "Computers"; "Fiction";
               "History"; "Science"; "Travel" ]);
        attribute "Price" ~variants:[ "Price:"; "Price range" ] Money;
        attribute "Format"
          ~variants:[ "Format:"; "Binding" ]
          (Enum [ "Hardcover"; "Paperback"; "Audio"; "eBook" ]);
        attribute "Condition" ~variants:[ "Condition:" ]
          (Enum [ "New"; "Used"; "Collectible" ]);
        attribute "Language" ~variants:[ "Language:" ]
          (Enum [ "English"; "French"; "German"; "Spanish"; "Italian" ]);
        attribute "Publication year"
          ~variants:[ "Published:"; "Publication date" ]
          Date;
        attribute "Reader age" ~variants:[ "Age range:" ]
          (Enum [ "Baby-3"; "4-8"; "9-12"; "Teens"; "Adult" ]) ] }

let automobiles =
  { name = "Automobiles";
    attributes =
      [ attribute "Make" ~variants:[ "Make:"; "Select a make" ]
          (Enum
             [ "Acura"; "BMW"; "Chevrolet"; "Ford"; "Honda"; "Nissan";
               "Toyota"; "Volkswagen" ]);
        attribute "Model" ~variants:[ "Model:"; "Model name" ] Free_text;
        attribute "Year" ~variants:[ "Year:"; "Model year" ]
          (Numeric (years 1990 2004));
        attribute "Price" ~variants:[ "Price:"; "Price range"; "Asking price" ]
          Money;
        attribute "Mileage" ~variants:[ "Mileage:"; "Max mileage" ]
          (Numeric [ "10000"; "25000"; "50000"; "75000"; "100000" ]);
        attribute "Color" ~variants:[ "Color:"; "Exterior color" ]
          (Enum [ "Black"; "Blue"; "Green"; "Red"; "Silver"; "White" ]);
        attribute "Body style" ~variants:[ "Body style:"; "Type" ]
          (Enum [ "Convertible"; "Coupe"; "Sedan"; "SUV"; "Truck"; "Wagon" ]);
        attribute "Transmission" ~variants:[ "Transmission:" ]
          (Enum [ "Automatic"; "Manual" ]);
        attribute "Zip code" ~variants:[ "Zip:"; "Your zip code" ] Free_text;
        attribute "Distance" ~variants:[ "Within:"; "Search radius" ]
          (Numeric [ "10"; "25"; "50"; "100"; "250"; "500" ]);
        attribute "Fuel type" ~variants:[ "Fuel:" ]
          (Enum [ "Gasoline"; "Diesel"; "Hybrid" ]);
        attribute "Doors" ~variants:[ "Doors:" ] (Numeric [ "2"; "3"; "4"; "5" ]) ] }

let airfares =
  { name = "Airfares";
    attributes =
      [ attribute "From" ~variants:[ "From:"; "Departure city"; "Leaving from" ]
          Free_text;
        attribute "To" ~variants:[ "To:"; "Arrival city"; "Going to" ]
          Free_text;
        attribute "Departure date"
          ~variants:[ "Departing:"; "Departure" ]
          Date;
        attribute "Return date" ~variants:[ "Returning:"; "Return" ] Date;
        attribute "Departure time" ~variants:[ "Depart time:" ] Time;
        attribute "Passengers" ~variants:[ "Passengers:"; "Number of passengers" ]
          (Numeric (counts 1 6));
        attribute "Adults" ~variants:[ "Adults:" ] (Numeric (counts 1 6));
        attribute "Children" ~variants:[ "Children:" ] (Numeric (counts 0 5));
        attribute "Class" ~variants:[ "Class:"; "Cabin" ]
          (Enum [ "Economy"; "Premium economy"; "Business"; "First" ]);
        attribute "Airline" ~variants:[ "Airline:"; "Preferred airline" ]
          (Enum
             [ "Any airline"; "American"; "Continental"; "Delta"; "United";
               "US Airways" ]);
        attribute "Trip type" ~variants:[ "" ]
          (Enum [ "Round trip"; "One way"; "Multi-city" ]);
        attribute "Ticket price" ~variants:[ "Fare:" ] Money ] }

let core_three = [ books; automobiles; airfares ]

(* ------------------------------------------------------------------ *)
(* NewDomain-dataset domains                                           *)
(* ------------------------------------------------------------------ *)

let movies =
  { name = "Movies";
    attributes =
      [ attribute "Title" ~variants:[ "Title:"; "Movie title" ] Free_text;
        attribute "Director" ~variants:[ "Director:" ] Free_text;
        attribute "Actor" ~variants:[ "Actor:"; "Starring" ] Free_text;
        attribute "Genre" ~variants:[ "Genre:"; "Category" ]
          (Enum
             [ "Action"; "Comedy"; "Documentary"; "Drama"; "Horror";
               "Romance"; "Sci-Fi" ]);
        attribute "Rating" ~variants:[ "Rating:"; "MPAA rating" ]
          (Enum [ "G"; "PG"; "PG-13"; "R"; "NC-17" ]);
        attribute "Release year" ~variants:[ "Year:" ]
          (Numeric (years 1970 2004));
        attribute "Format" ~variants:[ "Format:" ]
          (Enum [ "DVD"; "VHS"; "Laserdisc" ]);
        attribute "Price" ~variants:[ "Price:" ] Money ] }

let music =
  { name = "Music";
    attributes =
      [ attribute "Artist" ~variants:[ "Artist:"; "Artist name"; "Band" ]
          Free_text;
        attribute "Album" ~variants:[ "Album:"; "Album title" ] Free_text;
        attribute "Song" ~variants:[ "Song:"; "Song title"; "Track" ] Free_text;
        attribute "Genre" ~variants:[ "Genre:"; "Style" ]
          (Enum
             [ "Blues"; "Classical"; "Country"; "Jazz"; "Pop"; "Rap";
               "Rock"; "World" ]);
        attribute "Label" ~variants:[ "Label:"; "Record label" ] Free_text;
        attribute "Format" ~variants:[ "Format:" ]
          (Enum [ "CD"; "Cassette"; "Vinyl"; "MP3" ]);
        attribute "Release year" ~variants:[ "Year:" ]
          (Numeric (years 1960 2004));
        attribute "Price" ~variants:[ "Price:" ] Money ] }

let hotels =
  { name = "Hotels";
    attributes =
      [ attribute "City" ~variants:[ "City:"; "Destination"; "Where" ]
          Free_text;
        attribute "Check-in" ~variants:[ "Check-in date:"; "Arriving" ] Date;
        attribute "Check-out" ~variants:[ "Check-out date:"; "Departing" ]
          Date;
        attribute "Guests" ~variants:[ "Guests:"; "Number of guests" ]
          (Numeric (counts 1 8));
        attribute "Rooms" ~variants:[ "Rooms:" ] (Numeric (counts 1 4));
        attribute "Stars" ~variants:[ "Star rating:"; "Class" ]
          (Enum [ "1 star"; "2 stars"; "3 stars"; "4 stars"; "5 stars" ]);
        attribute "Nightly rate" ~variants:[ "Rate:"; "Price per night" ]
          Money;
        attribute "Hotel name" ~variants:[ "Hotel:" ] Free_text ] }

let car_rentals =
  { name = "CarRentals";
    attributes =
      [ attribute "Pick-up city" ~variants:[ "Pick-up location:" ] Free_text;
        attribute "Drop-off city" ~variants:[ "Drop-off location:" ]
          Free_text;
        attribute "Pick-up date" ~variants:[ "Pick-up:" ] Date;
        attribute "Drop-off date" ~variants:[ "Drop-off:" ] Date;
        attribute "Pick-up time" ~variants:[ "Time:" ] Time;
        attribute "Car type" ~variants:[ "Car class:"; "Vehicle type" ]
          (Enum
             [ "Economy"; "Compact"; "Midsize"; "Full size"; "SUV";
               "Minivan"; "Luxury" ]);
        attribute "Rental company" ~variants:[ "Company:" ]
          (Enum [ "Any"; "Alamo"; "Avis"; "Budget"; "Hertz"; "National" ]);
        attribute "Daily rate" ~variants:[ "Rate:" ] Money ] }

let jobs =
  { name = "Jobs";
    attributes =
      [ attribute "Keywords" ~variants:[ "Keywords:"; "Job keywords" ]
          Free_text;
        attribute "Location" ~variants:[ "Location:"; "City or state" ]
          Free_text;
        attribute "Category" ~variants:[ "Category:"; "Job category" ]
          (Enum
             [ "Accounting"; "Engineering"; "Education"; "Healthcare";
               "Marketing"; "Sales"; "Technology" ]);
        attribute "Job type" ~variants:[ "Type:" ]
          (Enum [ "Full time"; "Part time"; "Contract"; "Internship" ]);
        attribute "Salary" ~variants:[ "Salary:"; "Salary range" ] Money;
        attribute "Experience" ~variants:[ "Experience level:" ]
          (Enum [ "Entry level"; "Mid level"; "Senior"; "Executive" ]);
        attribute "Company" ~variants:[ "Company name:" ] Free_text;
        attribute "Posted within" ~variants:[ "Posted:" ]
          (Enum [ "1 day"; "7 days"; "30 days"; "90 days" ]) ] }

let real_estates =
  { name = "RealEstates";
    attributes =
      [ attribute "Location" ~variants:[ "Location:"; "City"; "Zip code" ]
          Free_text;
        attribute "Price" ~variants:[ "Price:"; "Price range" ] Money;
        attribute "Bedrooms" ~variants:[ "Bedrooms:"; "Beds" ]
          (Numeric (counts 1 6));
        attribute "Bathrooms" ~variants:[ "Bathrooms:"; "Baths" ]
          (Numeric (counts 1 5));
        attribute "Property type" ~variants:[ "Type:" ]
          (Enum [ "House"; "Condo"; "Townhouse"; "Land"; "Multi-family" ]);
        attribute "Square feet" ~variants:[ "Sq. ft.:" ]
          (Numeric [ "1000"; "1500"; "2000"; "2500"; "3000"; "4000" ]);
        attribute "Year built" ~variants:[ "Built:" ]
          (Numeric (years 1900 2004));
        attribute "Garage" ~variants:[ "Garage:" ]
          (Enum [ "None"; "1 car"; "2 cars"; "3+ cars" ]) ] }

let new_six = [ movies; music; hotels; car_rentals; jobs; real_estates ]

(* ------------------------------------------------------------------ *)
(* Extended domains for the Random dataset                             *)
(* ------------------------------------------------------------------ *)

let electronics =
  { name = "Electronics";
    attributes =
      [ attribute "Product" ~variants:[ "Product name:"; "Search for" ]
          Free_text;
        attribute "Brand" ~variants:[ "Brand:" ]
          (Enum [ "Canon"; "Dell"; "HP"; "Panasonic"; "Samsung"; "Sony" ]);
        attribute "Category" ~variants:[ "Category:" ]
          (Enum [ "Cameras"; "Computers"; "Phones"; "TVs"; "Audio" ]);
        attribute "Price" ~variants:[ "Price:" ] Money;
        attribute "Condition" ~variants:[ "Condition:" ]
          (Enum [ "New"; "Refurbished"; "Used" ]) ] }

let watches =
  { name = "Watches";
    attributes =
      [ attribute "Brand" ~variants:[ "Brand:" ]
          (Enum [ "Casio"; "Citizen"; "Omega"; "Rolex"; "Seiko"; "Timex" ]);
        attribute "Gender" ~variants:[ "For:" ]
          (Enum [ "Men"; "Women"; "Unisex" ]);
        attribute "Price" ~variants:[ "Price:" ] Money;
        attribute "Band material" ~variants:[ "Band:" ]
          (Enum [ "Leather"; "Metal"; "Rubber" ]);
        attribute "Model" ~variants:[ "Model:" ] Free_text ] }

let flowers =
  { name = "Flowers";
    attributes =
      [ attribute "Occasion" ~variants:[ "Occasion:" ]
          (Enum
             [ "Anniversary"; "Birthday"; "Get well"; "Sympathy"; "Thank you" ]);
        attribute "Flower type" ~variants:[ "Type:" ]
          (Enum [ "Roses"; "Tulips"; "Lilies"; "Orchids"; "Mixed" ]);
        attribute "Price" ~variants:[ "Price:" ] Money;
        attribute "Delivery date" ~variants:[ "Deliver on:" ] Date;
        attribute "Recipient zip" ~variants:[ "Zip code:" ] Free_text ] }

let coins =
  { name = "Coins";
    attributes =
      [ attribute "Country" ~variants:[ "Country:" ]
          (Enum [ "United States"; "Canada"; "Great Britain"; "France";
                  "Germany" ]);
        attribute "Denomination" ~variants:[ "Denomination:" ]
          (Enum [ "Cent"; "Nickel"; "Dime"; "Quarter"; "Dollar" ]);
        attribute "Year" ~variants:[ "Year:" ] (Numeric (years 1850 2004));
        attribute "Grade" ~variants:[ "Grade:" ]
          (Enum [ "Good"; "Fine"; "Extremely fine"; "Uncirculated"; "Proof" ]);
        attribute "Price" ~variants:[ "Price:" ] Money ] }

let stamps =
  { name = "Stamps";
    attributes =
      [ attribute "Country" ~variants:[ "Country:" ] Free_text;
        attribute "Year of issue" ~variants:[ "Issued:" ]
          (Numeric (years 1900 2004));
        attribute "Topic" ~variants:[ "Topic:" ]
          (Enum [ "Animals"; "Art"; "Famous people"; "Space"; "Sports" ]);
        attribute "Condition" ~variants:[ "Condition:" ]
          (Enum [ "Mint"; "Used"; "First day cover" ]);
        attribute "Price" ~variants:[ "Price:" ] Money ] }

let toys =
  { name = "Toys";
    attributes =
      [ attribute "Toy name" ~variants:[ "Search:"; "Toy or brand" ]
          Free_text;
        attribute "Age group" ~variants:[ "Age:" ]
          (Enum [ "0-2"; "3-5"; "6-8"; "9-12"; "Teen" ]);
        attribute "Category" ~variants:[ "Category:" ]
          (Enum [ "Action figures"; "Dolls"; "Games"; "Puzzles"; "Vehicles" ]);
        attribute "Brand" ~variants:[ "Brand:" ]
          (Enum [ "Fisher-Price"; "Hasbro"; "Lego"; "Mattel" ]);
        attribute "Price" ~variants:[ "Price:" ] Money ] }

let sports =
  { name = "SportingGoods";
    attributes =
      [ attribute "Keyword" ~variants:[ "Search:" ] Free_text;
        attribute "Sport" ~variants:[ "Sport:" ]
          (Enum [ "Baseball"; "Basketball"; "Cycling"; "Golf"; "Running";
                  "Tennis" ]);
        attribute "Brand" ~variants:[ "Brand:" ]
          (Enum [ "Adidas"; "Nike"; "Reebok"; "Wilson" ]);
        attribute "Price" ~variants:[ "Price:" ] Money;
        attribute "Gender" ~variants:[ "For:" ]
          (Enum [ "Men"; "Women"; "Youth" ]) ] }

let computers =
  { name = "Computers";
    attributes =
      [ attribute "Keyword" ~variants:[ "Search:" ] Free_text;
        attribute "Manufacturer" ~variants:[ "Manufacturer:" ]
          (Enum [ "Apple"; "Compaq"; "Dell"; "Gateway"; "IBM"; "Toshiba" ]);
        attribute "Processor" ~variants:[ "CPU:" ]
          (Enum [ "Celeron"; "Pentium III"; "Pentium 4"; "Athlon" ]);
        attribute "Memory" ~variants:[ "RAM:" ]
          (Numeric [ "128"; "256"; "512"; "1024" ]);
        attribute "Price" ~variants:[ "Price:" ] Money ] }

let wines =
  { name = "Wines";
    attributes =
      [ attribute "Winery" ~variants:[ "Winery:" ] Free_text;
        attribute "Varietal" ~variants:[ "Varietal:" ]
          (Enum [ "Cabernet"; "Chardonnay"; "Merlot"; "Pinot Noir";
                  "Zinfandel" ]);
        attribute "Region" ~variants:[ "Region:" ]
          (Enum [ "California"; "France"; "Italy"; "Australia"; "Chile" ]);
        attribute "Vintage" ~variants:[ "Vintage:" ]
          (Numeric (years 1980 2003));
        attribute "Price" ~variants:[ "Price:" ] Money ] }

let extended =
  [ electronics; watches; flowers; coins; stamps; toys; sports; computers;
    wines ]

let all = core_three @ new_six @ extended

let find name = List.find (fun d -> d.name = name) all
