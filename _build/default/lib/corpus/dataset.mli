(** The four experimental datasets (paper Section 6).

    All are produced deterministically from fixed seeds, so every table
    and figure of the evaluation is reproducible bit-for-bit.

    - {!basic}: 150 sources, 50 each in Books/Automobiles/Airfares; the
      grammar-derivation dataset, biased toward complex forms (the paper
      observes its survey favoured many-condition interfaces).
    - {!new_source}: 30 additional sources (10 per core domain), simpler
      forms — the paper found these score slightly *better* than Basic.
    - {!new_domain}: 42 sources from six unseen domains (7 each).
    - {!random}: 30 sources sampled across 16 heterogeneous domains with
      a higher rate of out-of-grammar layouts, standing in for the
      invisible-web.net random sample. *)

type t = {
  name : string;
  sources : Generator.source list;
}

val basic : unit -> t
val new_source : unit -> t
val new_domain : unit -> t
val random : unit -> t

val all : unit -> t list
(** The four datasets, in the paper's order. *)

val save : dir:string -> t -> unit
(** Write each source's HTML plus a [MANIFEST] of ground-truth conditions
    under [dir/<dataset>/<source-id>.html]. *)
