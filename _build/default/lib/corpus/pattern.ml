module Dom = Wqi_html.Dom
module Condition = Wqi_model.Condition

type id =
  | Attr_left_text
  | Attr_left_select
  | Attr_above_text
  | Attr_above_select
  | Enum_radio_h
  | Solo_checkbox
  | Date_mdy
  | Range_text_from_to
  | Text_op_radio_below
  | Keyword_bare
  | Enum_checkbox_h
  | Text_op_select_left
  | Range_select
  | Enum_radio_v
  | Multi_select
  | Enum_radio_bare
  | Date_my
  | Time_sel
  | Range_text_to_only
  | Textarea_keyword
  | Attr_below_text
  | Text_op_radio_right
  | Attr_text_unit
  | Text_op_checkbox
  | Text_op_select_right
  | Oog_attr_right_text
  | Oog_attr_right_select
  | Oog_image_label
  | Oog_double_box

type rendering = {
  nodes : Dom.t list;
  truth : Condition.t;
  pattern : id;
}

let in_vocabulary =
  [ Attr_left_text; Attr_left_select; Attr_above_text; Attr_above_select;
    Enum_radio_h; Solo_checkbox; Date_mdy; Range_text_from_to;
    Text_op_radio_below; Keyword_bare; Enum_checkbox_h; Text_op_select_left;
    Range_select; Enum_radio_v; Multi_select; Enum_radio_bare; Date_my;
    Time_sel; Range_text_to_only; Textarea_keyword; Attr_text_unit;
    Attr_below_text; Text_op_radio_right; Text_op_select_right;
    Text_op_checkbox ]

let out_of_grammar =
  [ Oog_attr_right_text; Oog_attr_right_select; Oog_image_label;
    Oog_double_box ]

let name = function
  | Attr_left_text -> "attr-left-text"
  | Attr_left_select -> "attr-left-select"
  | Attr_above_text -> "attr-above-text"
  | Attr_above_select -> "attr-above-select"
  | Enum_radio_h -> "enum-radio-h"
  | Solo_checkbox -> "solo-checkbox"
  | Date_mdy -> "date-mdy"
  | Range_text_from_to -> "range-text-from-to"
  | Text_op_radio_below -> "text-op-radio-below"
  | Keyword_bare -> "keyword-bare"
  | Enum_checkbox_h -> "enum-checkbox-h"
  | Text_op_select_left -> "text-op-select-left"
  | Range_select -> "range-select"
  | Enum_radio_v -> "enum-radio-v"
  | Multi_select -> "multi-select"
  | Enum_radio_bare -> "enum-radio-bare"
  | Date_my -> "date-my"
  | Time_sel -> "time-sel"
  | Range_text_to_only -> "range-text-to-only"
  | Textarea_keyword -> "textarea-keyword"
  | Attr_below_text -> "attr-below-text"
  | Text_op_radio_right -> "text-op-radio-right"
  | Attr_text_unit -> "attr-text-unit"
  | Text_op_checkbox -> "text-op-checkbox"
  | Text_op_select_right -> "text-op-select-right"
  | Oog_attr_right_text -> "oog-attr-right-text"
  | Oog_attr_right_select -> "oog-attr-right-select"
  | Oog_image_label -> "oog-image-label"
  | Oog_double_box -> "oog-double-box"

let rank id =
  let rec index i = function
    | [] -> 0
    | x :: rest -> if x = id then i else index (i + 1) rest
  in
  index 1 in_vocabulary

let zipf_weight id =
  match rank id with
  | 0 -> 0.
  | r -> 1. /. Float.pow (float_of_int r) 0.95

(* ------------------------------------------------------------------ *)
(* Markup helpers                                                      *)
(* ------------------------------------------------------------------ *)

let el = Dom.element
let txt = Dom.text
let br = el "br" []

let fresh_name field_seq prefix =
  let n = !field_seq in
  incr field_seq;
  Printf.sprintf "%s_%d" prefix n

let textbox ?(size = 20) field_seq =
  el "input"
    ~attrs:
      [ ("type", "text"); ("name", fresh_name field_seq "f");
        ("size", string_of_int size) ]
    []

let select ?(multiple = false) ?size field_seq options =
  let attrs =
    [ ("name", fresh_name field_seq "s") ]
    @ (if multiple then [ ("multiple", "") ] else [])
    @ (match size with Some s -> [ ("size", string_of_int s) ] | None -> [])
  in
  el "select" ~attrs (List.map (fun o -> el "option" [ txt o ]) options)

let radio ?(checked = false) group =
  el "input"
    ~attrs:
      ([ ("type", "radio"); ("name", group) ]
       @ if checked then [ ("checked", "") ] else [])
    []

let checkbox field_seq =
  el "input" ~attrs:[ ("type", "checkbox"); ("name", fresh_name field_seq "c") ] []

let textarea ?(cols = 24) ?(rows = 3) field_seq =
  el "textarea"
    ~attrs:
      [ ("name", fresh_name field_seq "t"); ("cols", string_of_int cols);
        ("rows", string_of_int rows) ]
    []

let submit label =
  el "input" ~attrs:[ ("type", "submit"); ("value", label) ] []

(* Interleave radio/checkbox widgets with their labels on one line. *)
let unit_row make_box labels =
  List.concat_map (fun label -> [ make_box (); txt (" " ^ label ^ "  ") ]) labels

let unit_column make_box labels =
  List.concat
    (List.mapi
       (fun i label ->
          (if i = 0 then [] else [ br ]) @ [ make_box (); txt (" " ^ label) ])
       labels)

(* ------------------------------------------------------------------ *)
(* Attribute-data helpers                                              *)
(* ------------------------------------------------------------------ *)

let label_of g (attr : Vocabulary.attribute) =
  match attr.variants with
  | [] -> attr.label
  | variants ->
    if Prng.bernoulli g 0.4 then attr.label else Prng.pick g variants

(* The ground truth records the label as displayed (normalization happens
   in the metric). *)

let money_buckets =
  [ "Under $10"; "$10 - $25"; "$25 - $50"; "$50 - $100"; "Over $100" ]

let money_bounds = [ "$0"; "$10"; "$25"; "$50"; "$100"; "$250"; "$500" ]

let enum_values g (attr : Vocabulary.attribute) ~max_values =
  match attr.kind with
  | Vocabulary.Enum values | Vocabulary.Numeric values ->
    if List.length values <= max_values then values
    else Prng.sample g max_values values
  | Vocabulary.Money -> money_buckets
  | Vocabulary.Free_text | Vocabulary.Date | Vocabulary.Time -> []

let select_options g (attr : Vocabulary.attribute) =
  match attr.kind with
  | Vocabulary.Enum values -> values
  | Vocabulary.Numeric values -> values
  | Vocabulary.Money -> money_buckets
  | Vocabulary.Free_text | Vocabulary.Date | Vocabulary.Time ->
    ignore g;
    []

let checkbox_operator_sets =
  [ [ "exact match"; "whole words" ];
    [ "match all words"; "match exact phrase" ] ]

let operator_sets =
  [ [ "contains"; "starts with"; "exact phrase" ];
    [ "begins with"; "ends with"; "contains" ];
    [ "exact match"; "contains all words"; "contains any words" ];
    [ "keywords"; "exact title"; "starts with" ] ]

let months =
  [ "January"; "February"; "March"; "April"; "May"; "June"; "July";
    "August"; "September"; "October"; "November"; "December" ]

let days = List.init 31 (fun i -> string_of_int (i + 1))
let years_opts = List.init 8 (fun i -> string_of_int (2004 + i))
let hours =
  List.init 12 (fun i -> string_of_int (i + 1) ^ " am")
  @ List.init 12 (fun i -> string_of_int (i + 1) ^ " pm")
let minutes = [ "00"; "15"; "30"; "45" ]

(* ------------------------------------------------------------------ *)
(* Applicability                                                       *)
(* ------------------------------------------------------------------ *)

let lowercase_contains ~needle s =
  let s = String.lowercase_ascii s in
  let n = String.length needle and h = String.length s in
  let rec at i =
    i + n <= h && (String.sub s i n = needle || at (i + 1))
  in
  at 0

let is_keywordish (attr : Vocabulary.attribute) =
  lowercase_contains ~needle:"keyword" attr.label
  || lowercase_contains ~needle:"search" attr.label

let allows_bare (attr : Vocabulary.attribute) = List.mem "" attr.variants

(* Labels whose value boxes conventionally carry a trailing unit. *)
let unit_table =
  [ ("Mileage", "miles"); ("Distance", "miles"); ("Square feet", "sq ft");
    ("Memory", "MB"); ("Guests", "people"); ("Rooms", "rooms") ]

let unit_for (attr : Vocabulary.attribute) =
  List.assoc_opt attr.label unit_table

let applicable (attr : Vocabulary.attribute) =
  match attr.kind with
  | Vocabulary.Free_text ->
    [ Attr_left_text; Attr_above_text; Attr_below_text; Text_op_radio_below;
      Text_op_select_left; Text_op_radio_right; Text_op_select_right;
      Text_op_checkbox; Textarea_keyword ]
    @ (if is_keywordish attr then [ Keyword_bare ] else [])
  | Vocabulary.Enum values ->
    [ Attr_left_select; Attr_above_select; Multi_select ]
    @ (if List.length values <= 5 then
         [ Enum_radio_h; Enum_radio_v; Enum_checkbox_h ]
       else [])
    @ (if allows_bare attr then [ Enum_radio_bare ] else [])
    @ [ Solo_checkbox ]
  | Vocabulary.Numeric _ ->
    [ Attr_left_select; Attr_above_select; Range_select ]
    @ (if unit_for attr <> None then [ Attr_text_unit ] else [])
  | Vocabulary.Money ->
    [ Range_text_from_to; Range_text_to_only; Range_select;
      Attr_left_select; Attr_left_text ]
  | Vocabulary.Date -> [ Date_mdy; Date_my; Attr_left_text ]
  | Vocabulary.Time -> [ Time_sel ]

let applicable_oog (attr : Vocabulary.attribute) =
  match attr.kind with
  | Vocabulary.Free_text ->
    [ Oog_attr_right_text; Oog_image_label; Oog_double_box ]
  | Vocabulary.Enum _ | Vocabulary.Numeric _ -> [ Oog_attr_right_select ]
  | Vocabulary.Money | Vocabulary.Date | Vocabulary.Time -> []

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let truth ?operators ~attribute domain =
  Condition.make ?operators ~attribute domain

let render g ~field_seq (attr : Vocabulary.attribute) id =
  if not (List.mem id (applicable attr) || List.mem id (applicable_oog attr))
  then
    invalid_arg
      (Printf.sprintf "Pattern.render: %s not applicable to %s" (name id)
         attr.label);
  let label = label_of g attr in
  let group = fresh_name field_seq "g" in
  let finish nodes truth = { nodes; truth; pattern = id } in
  match id with
  | Attr_left_text ->
    finish
      [ txt label; textbox ~size:(15 + Prng.int g 15) field_seq ]
      (truth ~attribute:label Condition.Text)
  | Attr_above_text ->
    finish
      [ txt label; br; textbox field_seq ]
      (truth ~attribute:label Condition.Text)
  | Attr_below_text ->
    finish
      [ textbox field_seq; br; txt label ]
      (truth ~attribute:label Condition.Text)
  | Attr_left_select ->
    let options = select_options g attr in
    finish
      [ txt label; select field_seq options ]
      (truth ~attribute:label (Condition.Enumeration options))
  | Attr_above_select ->
    let options = select_options g attr in
    finish
      [ txt label; br; select field_seq options ]
      (truth ~attribute:label (Condition.Enumeration options))
  | Multi_select ->
    let options = select_options g attr in
    finish
      [ txt label; br;
        select ~multiple:true ~size:(min 4 (List.length options)) field_seq
          options ]
      (truth ~attribute:label (Condition.Enumeration options))
  | Enum_radio_h ->
    let values = enum_values g attr ~max_values:4 in
    finish
      (txt label :: unit_row (fun () -> radio group) values)
      (truth ~attribute:label (Condition.Enumeration values))
  | Enum_radio_v ->
    let values = enum_values g attr ~max_values:4 in
    finish
      ((txt label :: br :: unit_column (fun () -> radio group) values))
      (truth ~attribute:label (Condition.Enumeration values))
  | Enum_radio_bare ->
    let values = enum_values g attr ~max_values:3 in
    finish
      (unit_row (fun () -> radio group) values)
      (truth ~attribute:"" (Condition.Enumeration values))
  | Enum_checkbox_h ->
    let values = enum_values g attr ~max_values:4 in
    finish
      (txt label :: unit_row (fun () -> checkbox field_seq) values)
      (truth ~attribute:label (Condition.Enumeration values))
  | Solo_checkbox ->
    let value =
      match enum_values g attr ~max_values:8 with
      | [] -> attr.label
      | values -> Prng.pick g values
    in
    let solo_label = value ^ " only" in
    finish
      [ checkbox field_seq; txt (" " ^ solo_label) ]
      (truth ~attribute:solo_label (Condition.Enumeration [ solo_label ]))
  | Text_op_radio_below ->
    let ops = Prng.pick g operator_sets in
    finish
      ([ txt label; textbox field_seq; br ]
       @ unit_row (fun () -> radio group) ops)
      (truth ~operators:ops ~attribute:label Condition.Text)
  | Text_op_radio_right ->
    let ops = Prng.pick g operator_sets in
    finish
      ([ txt label; textbox ~size:14 field_seq ]
       @ unit_row (fun () -> radio group) ops)
      (truth ~operators:ops ~attribute:label Condition.Text)
  | Text_op_select_left ->
    let ops = Prng.pick g operator_sets in
    finish
      [ txt label; select field_seq ops; textbox ~size:16 field_seq ]
      (truth ~operators:ops ~attribute:label Condition.Text)
  | Range_text_from_to ->
    finish
      [ txt label; txt " from "; textbox ~size:8 field_seq; txt " to ";
        textbox ~size:8 field_seq ]
      (truth ~operators:[ "between" ] ~attribute:label
         (Condition.Range Condition.Text))
  | Range_text_to_only ->
    finish
      [ txt label; textbox ~size:8 field_seq; txt " to ";
        textbox ~size:8 field_seq ]
      (truth ~operators:[ "between" ] ~attribute:label
         (Condition.Range Condition.Text))
  | Range_select ->
    let options =
      match attr.kind with
      | Vocabulary.Money -> money_bounds
      | _ -> select_options g attr
    in
    let lo, hi =
      if Prng.bernoulli g 0.5 then ("from", "to") else ("min", "max")
    in
    finish
      [ txt label; txt (" " ^ lo ^ " "); select field_seq options;
        txt (" " ^ hi ^ " "); select field_seq options ]
      (truth ~operators:[ "between" ] ~attribute:label
         (Condition.Range (Condition.Enumeration options)))
  | Date_mdy ->
    finish
      [ txt label; select field_seq months; select field_seq days;
        select field_seq years_opts ]
      (truth ~attribute:label Condition.Datetime)
  | Date_my ->
    finish
      [ txt label; select field_seq months; select field_seq years_opts ]
      (truth ~attribute:label Condition.Datetime)
  | Time_sel ->
    finish
      [ txt label; select field_seq hours; select field_seq minutes ]
      (truth ~attribute:label Condition.Datetime)
  | Keyword_bare ->
    finish
      [ textbox ~size:30 field_seq; submit "Search" ]
      (truth ~attribute:"" Condition.Text)
  | Textarea_keyword ->
    finish
      [ txt label; br; textarea field_seq ]
      (truth ~attribute:label Condition.Text)
  | Attr_text_unit ->
    let unit = Option.value ~default:"units" (unit_for attr) in
    finish
      [ txt label; textbox ~size:8 field_seq; txt (" " ^ unit) ]
      (truth ~attribute:label Condition.Text)
  | Text_op_checkbox ->
    let ops = Prng.pick g checkbox_operator_sets in
    finish
      ([ txt label; textbox ~size:16 field_seq; br ]
       @ unit_row (fun () -> checkbox field_seq) ops)
      (truth ~operators:ops ~attribute:label Condition.Text)
  | Text_op_select_right ->
    let ops = Prng.pick g operator_sets in
    finish
      [ txt label; textbox ~size:16 field_seq; select field_seq ops ]
      (truth ~operators:ops ~attribute:label Condition.Text)
  | Oog_attr_right_text ->
    finish
      [ textbox field_seq; txt (" " ^ label) ]
      (truth ~attribute:label Condition.Text)
  | Oog_attr_right_select ->
    let options = select_options g attr in
    finish
      [ select field_seq options; txt (" " ^ label) ]
      (truth ~attribute:label (Condition.Enumeration options))
  | Oog_image_label ->
    finish
      [ el "img"
          ~attrs:
            [ ("src", "label.gif"); ("alt", label); ("width", "60");
              ("height", "16") ]
          [];
        textbox field_seq ]
      (truth ~attribute:label Condition.Text)
  | Oog_double_box ->
    finish
      [ txt (label ^ ", State:"); textbox ~size:14 field_seq;
        textbox ~size:4 field_seq ]
      (truth ~attribute:(label ^ ", State") Condition.Text)
