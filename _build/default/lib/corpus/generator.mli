(** Synthetic query-interface generator.

    Assembles a full HTML query form for a domain: a set of conditions
    rendered by {!Pattern} templates, arranged in one of several layout
    styles (label/field table rows, free flow, two-column rows, or the
    column-wise arrangement that defeats row-based grammars — the paper's
    Figure-14 case), plus realistic noise (form titles, decorative prose,
    submit/reset rows).  Ground truth travels with the markup. *)

type complexity =
  [ `Simple  (** 2–4 conditions; the paper's NewSource-style forms *)
  | `Rich    (** 4–8 conditions; the paper notes its Basic survey was
                 biased toward complex forms *) ]

type layout_style =
  | Rows_table   (** one condition per table row *)
  | Flow         (** conditions as flowing paragraphs *)
  | Two_column   (** two conditions side by side per row *)
  | Column_wise  (** conditions stacked column-by-column (Figure 14) *)

type source = {
  id : string;
  domain : string;
  html : string;
  truth : Wqi_model.Condition.t list;
  patterns : Pattern.id list;
      (** the condition patterns used, in rendering order (ground truth
          for the Figure-4 survey) *)
  style : layout_style;
}

val generate :
  Prng.t ->
  id:string ->
  domain:Vocabulary.domain ->
  complexity:complexity ->
  oog_prob:float ->
  ?header_prob:float ->
  unit ->
  source
(** [oog_prob] is the per-condition probability of using an
    out-of-grammar pattern (when one applies to the drawn attribute);
    [header_prob] (default 0) the per-condition probability of a short
    section-header text being inserted before it — a decoration the
    extractor can confuse with an attribute label. *)
