module Dom = Wqi_html.Dom
module Printer = Wqi_html.Printer

type complexity = [ `Simple | `Rich ]

type layout_style =
  | Rows_table
  | Flow
  | Two_column
  | Column_wise

type source = {
  id : string;
  domain : string;
  html : string;
  truth : Wqi_model.Condition.t list;
  patterns : Pattern.id list;
  style : layout_style;
}

let el = Dom.element
let txt = Dom.text

let titles =
  [ "Advanced Search"; "Search our catalog"; "Quick Search"; "Power Search";
    "Find it here"; "Search" ]

let blurbs =
  [ "Use the options below to narrow your results and find what you need.";
    "Fill in one or more of the fields below and press the search button.";
    "Our advanced search helps you locate items quickly and easily." ]

let pick_style g =
  Prng.weighted_pick g
    [ (Rows_table, 0.5); (Flow, 0.3); (Two_column, 0.12); (Column_wise, 0.08) ]

let condition_count g = function
  | `Simple -> 2 + Prng.int g 3
  | `Rich -> 4 + Prng.int g 5

let render_conditions g ~oog_prob attrs field_seq =
  List.map
    (fun attr ->
       let oog_candidates = Pattern.applicable_oog attr in
       if oog_candidates <> [] && Prng.bernoulli g oog_prob then
         Pattern.render g ~field_seq attr (Prng.pick g oog_candidates)
       else
         let weighted =
           List.map
             (fun p -> (p, Pattern.zipf_weight p))
             (Pattern.applicable attr)
         in
         Pattern.render g ~field_seq attr (Prng.weighted_pick g weighted))
    attrs

let submit_row g =
  let button =
    el "input" ~attrs:[ ("type", "submit"); ("value", Prng.pick g
      [ "Search"; "Find"; "Go"; "Submit"; "Search Now" ]) ] []
  in
  let row =
    if Prng.bernoulli g 0.3 then
      [ button; el "input" ~attrs:[ ("type", "reset"); ("value", "Clear") ] [] ]
    else [ button ]
  in
  (* Submit rows are frequently centered on real forms. *)
  if Prng.bernoulli g 0.3 then [ el "center" row ] else row

(* Split a list into two contiguous halves. *)
let halve items =
  let n = List.length items in
  let k = (n + 1) / 2 in
  let rec go i acc = function
    | rest when i = k -> (List.rev acc, rest)
    | [] -> (List.rev acc, [])
    | x :: rest -> go (i + 1) (x :: acc) rest
  in
  go 0 [] items

let td nodes = el "td" nodes
let tr cells = el "tr" cells
let table rows =
  el "table" ~attrs:[ ("cellpadding", "3"); ("cellspacing", "2") ] rows

let rec pair_up = function
  | [] -> []
  | [ x ] -> [ [ x ] ]
  | x :: y :: rest -> [ x; y ] :: pair_up rest

let section_headers =
  [ "Search options"; "More choices"; "Refine your search"; "Narrow it down";
    "Other criteria" ]

let arrange g style ~header_prob (renderings : Pattern.rendering list) =
  (* Section headers are short label-like texts dropped between
     conditions; they are decoration the ground truth does not list. *)
  let blocks =
    List.concat_map
      (fun (r : Pattern.rendering) ->
         if header_prob > 0. && Prng.bernoulli g header_prob then
           [ [ el "b" [ txt (Prng.pick g section_headers) ] ]; r.nodes ]
         else [ r.nodes ])
      renderings
  in
  match style with
  | Rows_table ->
    [ table (List.map (fun nodes -> tr [ td nodes ]) blocks @ [ tr [ td (submit_row g) ] ]) ]
  | Flow ->
    List.map (fun nodes -> el "p" nodes) blocks
    @ [ el "p" (submit_row g) ]
  | Two_column ->
    [ table
        (List.map (fun pair -> tr (List.map td pair)) (pair_up blocks)
         @ [ tr [ td (submit_row g) ] ]) ]
  | Column_wise ->
    let left, right = halve blocks in
    let stack blocks = List.map (fun nodes -> el "p" nodes) blocks in
    [ table [ tr [ td (stack left); td (stack right) ] ];
      el "p" (submit_row g) ]

let generate g ~id ~domain ~complexity ~oog_prob ?(header_prob = 0.) () =
  let field_seq = ref 0 in
  let n = condition_count g complexity in
  let attrs = Prng.sample g n domain.Vocabulary.attributes in
  let renderings = render_conditions g ~oog_prob attrs field_seq in
  let style = pick_style g in
  let body = arrange g style ~header_prob renderings in
  let header =
    (if Prng.bernoulli g 0.5 then
       let title = el "h2" [ txt (Prng.pick g titles) ] in
       [ (if Prng.bernoulli g 0.4 then el "center" [ title ] else title) ]
     else [])
    @
    if Prng.bernoulli g 0.3 then [ el "p" [ txt (Prng.pick g blurbs) ] ]
    else []
  in
  let doc =
    el "html"
      [ el "head" [ el "title" [ txt (domain.Vocabulary.name ^ " search") ] ];
        el "body"
          [ el "form" ~attrs:[ ("method", "get"); ("action", "/search") ]
              (header @ body) ] ]
  in
  { id;
    domain = domain.Vocabulary.name;
    html = Printer.to_string doc;
    truth = List.map (fun (r : Pattern.rendering) -> r.truth) renderings;
    patterns =
      List.filter_map
        (fun (r : Pattern.rendering) ->
           if List.mem r.pattern Pattern.in_vocabulary then Some r.pattern
           else None)
        renderings;
    style }
