(** The form extractor (paper Figure 2): the public entry point.

    Pipeline: HTML → DOM → layout → tokens → best-effort parse with the
    2P grammar → merge partial parses → semantic model (query
    capabilities) plus error reports and diagnostics. *)

type diagnostics = {
  token_count : int;
  parse_stats : Wqi_parser.Engine.stats;
  tree_count : int;      (** maximal partial trees selected by the parser *)
  complete : bool;       (** a single parse covered every token *)
  tokenize_seconds : float;
  parse_seconds : float;
}

type extraction = {
  model : Wqi_model.Semantic_model.t;
  tokens : Wqi_token.Token.t list;
  trees : Wqi_grammar.Instance.t list;
      (** the maximal partial parse trees the model was merged from *)
  diagnostics : diagnostics;
}

val extract :
  ?grammar:Wqi_grammar.Grammar.t ->
  ?options:Wqi_parser.Engine.options ->
  ?width:int ->
  string ->
  extraction
(** [extract html] runs the full pipeline on raw markup.  [grammar]
    defaults to the derived global grammar [Wqi_stdgrammar.Std.grammar];
    [options] to [Wqi_parser.Engine.default_options]; [width] to the
    default page width. *)

val extract_document :
  ?grammar:Wqi_grammar.Grammar.t ->
  ?options:Wqi_parser.Engine.options ->
  ?width:int ->
  Wqi_html.Dom.t ->
  extraction

val extract_forms :
  ?grammar:Wqi_grammar.Grammar.t ->
  ?options:Wqi_parser.Engine.options ->
  ?width:int ->
  string ->
  extraction list
(** [extract_forms html] extracts each [<form>] element of the page
    separately — real pages often carry several independent interfaces
    (a site-wide keyword box plus an advanced search form).  Each form
    is laid out in isolation, so a page returns one extraction per form,
    in document order.  Pages with no [<form>] element yield a single
    whole-page extraction (some interfaces are built without form
    tags). *)

val extract_tokens :
  ?grammar:Wqi_grammar.Grammar.t ->
  ?options:Wqi_parser.Engine.options ->
  Wqi_token.Token.t list ->
  extraction
(** Skip the front-end: parse an already-tokenized interface. *)

val conditions : extraction -> Wqi_model.Condition.t list
(** Shorthand for [extraction.model.conditions]. *)
