(** Query formulation: from semantic model to form submission.

    The paper's Section 1: "Users can then use the condition to
    formulate a specific constraint (e.g., [author = "tom clancy"]) by
    selecting an operator (e.g., "exact name") and filling in a value."
    This module closes that loop: given an extraction, it binds each
    condition to its concrete form fields (via the parse trees), and
    translates user constraints into the [name=value] parameters a
    mediator would submit. *)

type fillable = {
  condition : Wqi_model.Condition.t;
  inputs : Wqi_token.Token.t list;
      (** Input-field tokens of the condition, reading order: the
          textbox(es)/select(s) carrying values first-class, plus any
          operator radios/checkboxes. *)
}

val fillables : Extractor.extraction -> fillable list
(** Bind every extracted condition to its form fields by walking the
    parse trees.  Conditions in reading order. *)

type constraint_ = {
  attribute : string;
      (** Which condition, matched modulo label normalization. *)
  operator : string option;
      (** Operator wording to select (must be one of the condition's
          operators, matched modulo normalization); [None] keeps the
          implicit/default operator. *)
  values : string list;
      (** One value normally; two (low, high) for a range; up to three
          components (month, day, year) for a datetime. *)
}

val formulate :
  Extractor.extraction ->
  constraint_ list ->
  ((string * string) list, string) result
(** [formulate extraction constraints] produces the submission
    parameters.  Errors (as [Error message]) on: an attribute no
    condition carries, an operator the condition does not support, an
    enumeration value outside the domain, or a value count that does
    not fit the domain shape. *)
