module Engine = Wqi_parser.Engine
module Instance = Wqi_grammar.Instance
module Token = Wqi_token.Token
module Semantic_model = Wqi_model.Semantic_model
module Merger = Wqi_model.Merger

type diagnostics = {
  token_count : int;
  parse_stats : Engine.stats;
  tree_count : int;
  complete : bool;
  tokenize_seconds : float;
  parse_seconds : float;
}

type extraction = {
  model : Semantic_model.t;
  tokens : Token.t list;
  trees : Instance.t list;
  diagnostics : diagnostics;
}

let time f =
  let t0 = Unix.gettimeofday () in
  let v = f () in
  (v, Unix.gettimeofday () -. t0)

let extract_tokens ?(grammar = Wqi_stdgrammar.Std.grammar) ?options tokens =
  let result, parse_seconds =
    time (fun () -> Engine.parse ?options grammar tokens)
  in
  (* Only trees that explain at least one condition count as parses of
     the query interface; a bare atom wrapper covers nothing semantic,
     so its tokens must still be reported as missing. *)
  let trees =
    List.filter
      (fun tree -> Instance.collect_conditions tree <> [])
      result.Engine.maximal
  in
  let parses =
    List.map
      (fun tree ->
         { Merger.conditions = Instance.collect_conditions tree;
           cover = Instance.tokens tree })
      trees
  in
  let all_tokens =
    List.map (fun (t : Token.t) -> (t.id, Token.describe t)) tokens
  in
  (* Buttons and decorative images carry no query semantics; do not
     report them missing when no parse claimed them. *)
  let token_array = Array.of_list tokens in
  let ignorable id =
    match (token_array.(id)).Token.kind with
    | Token.Button | Token.Image -> true
    | Token.Text | Token.Textbox | Token.Selection | Token.Radio
    | Token.Checkbox ->
      false
  in
  let model = Merger.merge ~all_tokens ~ignorable parses in
  { model;
    tokens;
    trees;
    diagnostics =
      { token_count = List.length tokens;
        parse_stats = result.Engine.stats;
        tree_count = List.length trees;
        complete = result.Engine.complete <> None;
        tokenize_seconds = 0.;
        parse_seconds } }

let extract_document ?grammar ?options ?width doc =
  let tokens, tokenize_seconds =
    time (fun () -> Wqi_token.Tokenize.of_document ?width doc)
  in
  let extraction = extract_tokens ?grammar ?options tokens in
  { extraction with
    diagnostics = { extraction.diagnostics with tokenize_seconds } }

let extract ?grammar ?options ?width html =
  extract_document ?grammar ?options ?width (Wqi_html.Parser.parse html)

let extract_forms ?grammar ?options ?width html =
  let module Dom = Wqi_html.Dom in
  let doc = Wqi_html.Parser.parse html in
  match Dom.find_all (Dom.is_element ~named:"form") doc with
  | [] -> [ extract_document ?grammar ?options ?width doc ]
  | forms ->
    List.map
      (fun form ->
         (* Lay out each form as its own page so that unrelated page
            furniture cannot interfere with its spatial structure. *)
         let isolated = Dom.element "html" [ Dom.element "body" [ form ] ] in
         extract_document ?grammar ?options ?width isolated)
      forms

let conditions e = e.model.Semantic_model.conditions
