lib/core/formulate.mli: Extractor Wqi_model Wqi_token
