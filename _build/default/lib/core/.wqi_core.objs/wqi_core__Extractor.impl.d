lib/core/extractor.ml: Array List Unix Wqi_grammar Wqi_html Wqi_model Wqi_parser Wqi_stdgrammar Wqi_token
