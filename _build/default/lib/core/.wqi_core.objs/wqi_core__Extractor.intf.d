lib/core/extractor.mli: Wqi_grammar Wqi_html Wqi_model Wqi_parser Wqi_token
