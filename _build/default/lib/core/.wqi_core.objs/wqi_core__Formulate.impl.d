lib/core/formulate.ml: Extractor Fmt Hashtbl List Wqi_grammar Wqi_model Wqi_token
