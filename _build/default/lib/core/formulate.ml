module Condition = Wqi_model.Condition
module Token = Wqi_token.Token
module Instance = Wqi_grammar.Instance

type fillable = {
  condition : Condition.t;
  inputs : Token.t list;
}

type constraint_ = {
  attribute : string;
  operator : string option;
  values : string list;
}

let fillables (e : Extractor.extraction) =
  let token_by_id = Hashtbl.create 32 in
  List.iter (fun (t : Token.t) -> Hashtbl.replace token_by_id t.id t) e.tokens;
  List.concat_map
    (fun tree ->
       List.map
         (fun (condition, token_ids) ->
            let inputs =
              List.filter_map
                (fun id ->
                   match Hashtbl.find_opt token_by_id id with
                   | Some t when Token.is_field t -> Some t
                   | _ -> None)
                token_ids
            in
            { condition; inputs })
         (Instance.collect_conditions tree))
    e.trees

let norm = Condition.normalize_label

(* The parameter a single widget contributes when selected/filled. *)
let widget_param (t : Token.t) chosen =
  match t.kind with
  | Token.Radio | Token.Checkbox ->
    (t.name, if t.value <> "" then t.value else "on")
  | Token.Textbox | Token.Selection -> (t.name, chosen)
  | Token.Text | Token.Button | Token.Image -> (t.name, chosen)

let find_index pred items =
  let rec go i = function
    | [] -> None
    | x :: rest -> if pred x then Some i else go (i + 1) rest
  in
  go 0 items

let fill_condition (f : fillable) (c : constraint_) =
  let condition = f.condition in
  let err fmt = Fmt.kstr (fun m -> Error m) fmt in
  (* Split inputs: value carriers vs operator selectors.  For a Text
     condition with operators, radios/checkboxes/an all-operator select
     select the operator; everything else carries values. *)
  let is_op_selector (t : Token.t) =
    condition.operators <> []
    &&
    match t.kind with
    | Token.Radio | Token.Checkbox -> true
    | Token.Selection ->
      (* The operator select is the one whose options are exactly the
         condition's operator set. *)
      List.map norm t.options = List.map norm condition.operators
    | Token.Textbox | Token.Text | Token.Button | Token.Image -> false
  in
  let op_selectors = List.filter is_op_selector f.inputs in
  let value_inputs =
    List.filter (fun t -> not (is_op_selector t)) f.inputs
  in
  (* Operator parameters. *)
  let operator_params =
    match c.operator with
    | None -> Ok []
    | Some wording ->
      (match
         find_index (fun o -> norm o = norm wording) condition.operators
       with
       | None ->
         err "condition %s does not support operator %S"
           condition.attribute wording
       | Some index ->
         (match op_selectors with
          | [ (({ kind = Token.Selection; _ }) as sel) ] ->
            Ok [ (sel.name, List.nth condition.operators index) ]
          | selectors when List.length selectors > index ->
            Ok [ widget_param (List.nth selectors index) "" ]
          | _ ->
            err "condition %s: no widget for operator %S"
              condition.attribute wording))
  in
  (* Value parameters, by domain shape. *)
  let value_params =
    match condition.domain, c.values with
    | Condition.Text, [ v ] ->
      (match value_inputs with
       | t :: _ -> Ok [ (t.name, v) ]
       | [] -> err "condition %s has no input field" condition.attribute)
    | Condition.Text, vs ->
      err "condition %s takes one value, got %d" condition.attribute
        (List.length vs)
    | Condition.Enumeration allowed, [ v ] ->
      if not (List.exists (fun a -> norm a = norm v) allowed) then
        err "value %S is outside the domain of %s" v condition.attribute
      else begin
        match value_inputs with
        | [ ({ kind = Token.Selection; _ } as sel) ] -> Ok [ (sel.name, v) ]
        | inputs ->
          (* Radio/checkbox enumerations: pick the widget at the value's
             index. *)
          (match find_index (fun a -> norm a = norm v) allowed with
           | Some index when List.length inputs > index ->
             Ok [ widget_param (List.nth inputs index) v ]
           | _ ->
             err "condition %s: no widget for value %S" condition.attribute v)
      end
    | Condition.Enumeration allowed, values ->
      (* Multi-valued selection (checkbox groups / multi-selects). *)
      let rec collect acc = function
        | [] -> Ok (List.rev acc)
        | v :: rest ->
          if not (List.exists (fun a -> norm a = norm v) allowed) then
            err "value %S is outside the domain of %s" v condition.attribute
          else begin
            match value_inputs with
            | [ ({ kind = Token.Selection; _ } as sel) ] ->
              collect ((sel.name, v) :: acc) rest
            | inputs ->
              (match find_index (fun a -> norm a = norm v) allowed with
               | Some index when List.length inputs > index ->
                 collect (widget_param (List.nth inputs index) v :: acc) rest
               | _ ->
                 err "condition %s: no widget for value %S"
                   condition.attribute v)
          end
      in
      collect [] values
    | Condition.Range _, [ low; high ] ->
      (match value_inputs with
       | lo :: hi :: _ -> Ok [ (lo.name, low); (hi.name, high) ]
       | _ ->
         err "condition %s lacks the two range fields" condition.attribute)
    | Condition.Range _, vs ->
      err "range condition %s takes two values, got %d" condition.attribute
        (List.length vs)
    | Condition.Datetime, values ->
      if List.length values > List.length value_inputs then
        err "datetime condition %s has %d component fields, got %d values"
          condition.attribute (List.length value_inputs) (List.length values)
      else
        Ok (List.map2 (fun (t : Token.t) v -> (t.name, v))
              (List.filteri (fun i _ -> i < List.length values) value_inputs)
              values)
  in
  match (operator_params, value_params) with
  | Ok ops, Ok vals -> Ok (vals @ ops)
  | (Error _ as e), _ | _, (Error _ as e) -> e

let formulate extraction constraints =
  let fs = fillables extraction in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | c :: rest ->
      (match
         List.find_opt
           (fun f -> norm f.condition.attribute = norm c.attribute)
           fs
       with
       | None -> Error (Fmt.str "no condition for attribute %S" c.attribute)
       | Some f ->
         (match fill_condition f c with
          | Ok params -> go (List.rev_append params acc) rest
          | Error _ as e -> e))
  in
  go [] constraints
