type domain =
  | Text
  | Enumeration of string list
  | Range of domain
  | Datetime

type t = {
  attribute : string;
  operators : string list;
  domain : domain;
}

let make ?(operators = []) ~attribute domain =
  { attribute; operators; domain }

let is_space c = c = ' ' || c = '\t' || c = '\n' || c = '\r'

let normalize_label s =
  let b = Buffer.create (String.length s) in
  let pending_space = ref false in
  String.iter
    (fun c ->
       if is_space c then begin
         if Buffer.length b > 0 then pending_space := true
       end else begin
         if !pending_space then Buffer.add_char b ' ';
         pending_space := false;
         Buffer.add_char b (Char.lowercase_ascii c)
       end)
    s;
  let s = Buffer.contents b in
  (* Strip trailing label punctuation (and any space this exposes):
     "Author:" and "Author" must agree. *)
  let n = String.length s in
  let rec last i =
    if i > 0
    && (s.[i - 1] = ':' || s.[i - 1] = '?' || s.[i - 1] = '*'
        || s.[i - 1] = '.' || s.[i - 1] = ' ')
    then last (i - 1)
    else i
  in
  String.sub s 0 (last n)

let equal_attribute a b =
  normalize_label a.attribute = normalize_label b.attribute

let rec same_domain_shape a b =
  match a, b with
  | Text, Text -> true
  | Datetime, Datetime -> true
  | Range da, Range db -> same_domain_shape da db
  | Enumeration va, Enumeration vb -> List.length va = List.length vb
  | (Text | Datetime | Range _ | Enumeration _), _ -> false

let normalized_sorted_ops ops =
  List.sort_uniq compare (List.map normalize_label ops)

let matches ~truth extracted =
  equal_attribute truth extracted
  && same_domain_shape truth.domain extracted.domain
  && normalized_sorted_ops truth.operators
     = normalized_sorted_ops extracted.operators

let rec pp_domain ppf = function
  | Text -> Fmt.string ppf "text"
  | Datetime -> Fmt.string ppf "datetime"
  | Range d -> Fmt.pf ppf "range(%a)" pp_domain d
  | Enumeration values ->
    Fmt.pf ppf "{%a}" Fmt.(list ~sep:(any ", ") (quote string)) values

let pp ppf c =
  Fmt.pf ppf "[%s; {%a}; %a]" c.attribute
    Fmt.(list ~sep:(any ", ") string)
    c.operators pp_domain c.domain

let to_string c = Fmt.str "%a" pp c
