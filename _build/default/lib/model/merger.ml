type parse = {
  conditions : (Condition.t * int list) list;
  cover : int list;
}

module Int_set = Set.Make (Int)

let condition_key (c : Condition.t) =
  let rec domain_key = function
    | Condition.Text -> "t"
    | Condition.Datetime -> "d"
    | Condition.Range d -> "r(" ^ domain_key d ^ ")"
    | Condition.Enumeration vs -> Fmt.str "e%d" (List.length vs)
  in
  ( Condition.normalize_label c.attribute,
    List.sort_uniq compare (List.map Condition.normalize_label c.operators),
    domain_key c.domain )

let merge ~all_tokens ?(ignorable = fun _ -> false) parses =
  (* Union of conditions, deduplicated; remember the first token-set each
     distinct condition claims so conflicts can be detected. *)
  let seen = Hashtbl.create 16 in
  let conditions = ref [] in
  let claims : (int, string) Hashtbl.t = Hashtbl.create 64 in
  let errors = ref [] in
  List.iter
    (fun parse ->
       List.iter
         (fun (cond, tokens) ->
            let key = condition_key cond in
            if not (Hashtbl.mem seen key) then begin
              Hashtbl.replace seen key ();
              conditions := cond :: !conditions;
              let label = Condition.to_string cond in
              List.iter
                (fun tok ->
                   match Hashtbl.find_opt claims tok with
                   | Some other when other <> label ->
                     errors :=
                       Semantic_model.Conflict (tok, other, label) :: !errors
                   | Some _ -> ()
                   | None -> Hashtbl.replace claims tok label)
                tokens
            end)
         parse.conditions)
    parses;
  let covered =
    List.fold_left
      (fun acc parse ->
         List.fold_left (fun acc t -> Int_set.add t acc) acc parse.cover)
      Int_set.empty parses
  in
  List.iter
    (fun (tok, descr) ->
       if (not (Int_set.mem tok covered)) && not (ignorable tok) then
         errors := Semantic_model.Missing (tok, descr) :: !errors)
    all_tokens;
  { Semantic_model.conditions = List.rev !conditions;
    errors = List.rev !errors }
