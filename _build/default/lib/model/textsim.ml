let bigrams s =
  let s = Condition.normalize_label s in
  let n = String.length s in
  if n = 0 then []
  else if n = 1 then [ s ^ "$" ]
  else List.init (n - 1) (fun i -> String.sub s i 2)

let similarity a b =
  let ba = bigrams a and bb = bigrams b in
  if ba = [] || bb = [] then 0.
  else if Condition.normalize_label a = Condition.normalize_label b then 1.
  else begin
    let count_in items x = List.length (List.filter (( = ) x) items) in
    let shared =
      List.fold_left
        (fun acc g -> acc + min (count_in ba g) (count_in bb g))
        0 (List.sort_uniq compare ba)
    in
    2. *. float_of_int shared /. float_of_int (List.length ba + List.length bb)
  end
