type bucket = {
  label : string;
  low : float option;
  high : float option;
}

type analysis =
  | Free_text
  | Numeric_values of float list
  | Money_buckets of bucket list
  | Month_names
  | Categorical of string list
  | Composite_range of analysis
  | Composite_datetime

(* Pull every number (with optional decimal part) out of a string,
   ignoring currency signs and thousands separators. *)
let numbers_in s =
  let out = ref [] in
  let n = String.length s in
  let i = ref 0 in
  let is_digit c = c >= '0' && c <= '9' in
  while !i < n do
    if is_digit s.[!i] then begin
      let start = !i in
      while
        !i < n && (is_digit s.[!i] || s.[!i] = ',' || s.[!i] = '.')
      do
        incr i
      done;
      let raw = String.sub s start (!i - start) in
      let cleaned =
        String.concat "" (String.split_on_char ',' raw)
      in
      (* A trailing '.' is sentence punctuation, not a decimal point. *)
      let cleaned =
        if String.length cleaned > 0
        && cleaned.[String.length cleaned - 1] = '.'
        then String.sub cleaned 0 (String.length cleaned - 1)
        else cleaned
      in
      match float_of_string_opt cleaned with
      | Some v -> out := v :: !out
      | None -> ()
    end
    else incr i
  done;
  List.rev !out

let mentions words s =
  let s = String.lowercase_ascii s in
  List.exists
    (fun w ->
       let n = String.length w and h = String.length s in
       let rec at i = i + n <= h && (String.sub s i n = w || at (i + 1)) in
       at 0)
    words

let parse_bucket label =
  match numbers_in label with
  | [] -> { label; low = None; high = None }
  | [ v ] ->
    if mentions [ "under"; "below"; "less"; "up to"; "max" ] label then
      { label; low = None; high = Some v }
    else if mentions [ "over"; "above"; "more"; "at least"; "min"; "+" ] label
    then { label; low = Some v; high = None }
    else { label; low = Some v; high = Some v }
  | v1 :: v2 :: _ ->
    { label; low = Some (min v1 v2); high = Some (max v1 v2) }

let month_names =
  [ "january"; "february"; "march"; "april"; "may"; "june"; "july";
    "august"; "september"; "october"; "november"; "december" ]

let is_month s = List.mem (String.lowercase_ascii (String.trim s)) month_names

let rec analyze (domain : Condition.domain) =
  match domain with
  | Condition.Text -> Free_text
  | Condition.Datetime -> Composite_datetime
  | Condition.Range inner -> Composite_range (analyze inner)
  | Condition.Enumeration values ->
    let numeric =
      List.map (fun v -> float_of_string_opt (String.trim v)) values
    in
    if values <> [] && List.for_all Option.is_some numeric then
      Numeric_values (List.map Option.get numeric)
    else if values <> [] && List.for_all is_month values then Month_names
    else begin
      let buckets = List.map parse_bucket values in
      let bounded =
        List.length
          (List.filter (fun b -> b.low <> None || b.high <> None) buckets)
      in
      if values <> [] && 2 * bounded >= List.length values then
        Money_buckets buckets
      else Categorical values
    end

let covers analysis v =
  match analysis with
  | Money_buckets buckets ->
    List.exists
      (fun b ->
         (match b.low with Some lo -> v >= lo | None -> true)
         && match b.high with Some hi -> v <= hi | None -> true)
      buckets
  | Numeric_values values -> List.mem v values
  | Free_text | Month_names | Categorical _ | Composite_range _
  | Composite_datetime ->
    false

let rec pp ppf = function
  | Free_text -> Fmt.string ppf "free-text"
  | Numeric_values vs ->
    Fmt.pf ppf "numeric{%a}" Fmt.(list ~sep:(any ",") float) vs
  | Money_buckets bs ->
    Fmt.pf ppf "buckets{%a}"
      Fmt.(
        list ~sep:(any "; ") (fun ppf b ->
            pf ppf "%s[%a..%a]" b.label
              (option ~none:(any "-inf") float)
              b.low
              (option ~none:(any "+inf") float)
              b.high))
      bs
  | Month_names -> Fmt.string ppf "months"
  | Categorical vs -> Fmt.pf ppf "categorical(%d)" (List.length vs)
  | Composite_range inner -> Fmt.pf ppf "range(%a)" pp inner
  | Composite_datetime -> Fmt.string ppf "datetime"
