(** Merging multiple partial parses into one semantic model.

    The best-effort parser outputs several (possibly overlapping) partial
    parse trees; the merger takes the union of their extracted conditions
    to maximize coverage, and reports the two error classes of Section 3.4:
    conflicts (a token claimed by two different conditions) and missing
    elements (tokens covered by no selected tree). *)

type parse = {
  conditions : (Condition.t * int list) list;
      (** Each extracted condition with the ids of the tokens it uses. *)
  cover : int list;
      (** All token ids covered by the parse tree. *)
}

val merge :
  all_tokens:(int * string) list ->
  ?ignorable:(int -> bool) ->
  parse list ->
  Semantic_model.t
(** [merge ~all_tokens parses] unions the conditions of all parses
    (deduplicating equivalent conditions), detects conflicts, and reports
    as missing every token of [all_tokens] not covered by any parse and
    not deemed [ignorable] (the default ignores nothing).  [all_tokens]
    pairs a token id with a short description used in error messages. *)
