(** Query conditions: the unit of a form's semantic model.

    A condition is the paper's three-tuple [attribute; operators; domain]
    (Section 1).  For example, the author condition of amazon.com is
    [author; {"first name...", "start...", "exact name"}; text]. *)

type domain =
  | Text
      (** Free-text input (a textbox or textarea). *)
  | Enumeration of string list
      (** A closed list of values (selection list, radio or checkbox
          group).  The values are kept in presentation order. *)
  | Range of domain
      (** A pair of bounds over an underlying domain (e.g. price from/to
        textboxes or min/max selection lists). *)
  | Datetime
      (** A composite date or time (e.g. month/day/year selects). *)

type t = {
  attribute : string;
      (** The attribute label, as written on the form (e.g. "Author"). *)
  operators : string list;
      (** Supported operators or modifiers; [[]] denotes the implicit
          default operator (keyword [contains] for text domains,
          [equals] for enumerations). *)
  domain : domain;
}

val make : ?operators:string list -> attribute:string -> domain -> t

val normalize_label : string -> string
(** [normalize_label s] canonicalizes an attribute or operator label for
    comparison: lowercase, trailing punctuation ([:], [?], [*]) removed,
    internal whitespace collapsed. *)

val equal_attribute : t -> t -> bool
(** Attribute labels match after {!normalize_label}. *)

val matches : truth:t -> t -> bool
(** [matches ~truth extracted] is the correctness criterion used in the
    experiments: attributes match ({!equal_attribute}), the domains have
    the same shape ({!same_domain_shape}), and the extracted operator set
    equals the true one up to normalization and order. *)

val same_domain_shape : domain -> domain -> bool
(** Structural comparison of domains ignoring enumeration values'
    case/punctuation but not their number. *)

val pp_domain : Format.formatter -> domain -> unit
val pp : Format.formatter -> t -> unit
val to_string : t -> string
