(* Minimal JSON emission — only what export needs, no dependency. *)

let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
       match c with
       | '"' -> Buffer.add_string b "\\\""
       | '\\' -> Buffer.add_string b "\\\\"
       | '\n' -> Buffer.add_string b "\\n"
       | '\r' -> Buffer.add_string b "\\r"
       | '\t' -> Buffer.add_string b "\\t"
       | c when Char.code c < 0x20 ->
         Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
       | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let string s = "\"" ^ escape s ^ "\""

let array items = "[" ^ String.concat ", " items ^ "]"

let obj fields =
  "{"
  ^ String.concat ", "
      (List.map (fun (k, v) -> string k ^ ": " ^ v) fields)
  ^ "}"

let rec domain (d : Condition.domain) =
  match d with
  | Condition.Text -> obj [ ("kind", string "text") ]
  | Condition.Datetime -> obj [ ("kind", string "datetime") ]
  | Condition.Enumeration values ->
    obj
      [ ("kind", string "enumeration");
        ("values", array (List.map string values)) ]
  | Condition.Range inner ->
    obj [ ("kind", string "range"); ("of", domain inner) ]

let condition (c : Condition.t) =
  obj
    [ ("attribute", string c.attribute);
      ("operators", array (List.map string c.operators));
      ("domain", domain c.domain) ]

let error (e : Semantic_model.error) =
  match e with
  | Semantic_model.Conflict (tok, a, b) ->
    obj
      [ ("kind", string "conflict"); ("token", string_of_int tok);
        ("between", array [ string a; string b ]) ]
  | Semantic_model.Missing (tok, descr) ->
    obj
      [ ("kind", string "missing"); ("token", string_of_int tok);
        ("element", string descr) ]

let model (m : Semantic_model.t) =
  obj
    [ ("conditions", array (List.map condition m.conditions));
      ("errors", array (List.map error m.errors)) ]

let source_description ~name ?url m =
  obj
    ([ ("source", string name) ]
     @ (match url with Some u -> [ ("url", string u) ] | None -> [])
     @ [ ("capabilities", model m) ])
