(** Textual similarity of labels.

    Used wherever extracted attribute wording must be compared fuzzily:
    cross-interface refinement (recovering "Publishers" against a known
    "Publisher") and interface matching/clustering (the integration
    applications the paper motivates). *)

val bigrams : string -> string list
(** Character bigrams of the normalized label; a sentinel is appended to
    single-character labels so they still produce one bigram. *)

val similarity : string -> string -> float
(** Dice coefficient over character bigrams of normalized labels, in
    [0, 1]; exactly 1.0 when the normalized labels are equal and 0.0
    when either is empty. *)
