(** Machine-readable export of semantic models.

    The paper's motivation is large-scale integration: mediators need
    *source descriptions* that characterize each deep-Web source's query
    capabilities (Section 1 cites hand-written descriptions as a major
    scaling obstacle).  This module renders an extracted model as JSON
    so downstream tools (interface matching, clustering, unified-
    interface building) can consume it without linking OCaml code. *)

val condition : Condition.t -> string
(** One condition as a JSON object:
    [{"attribute": ..., "operators": [...], "domain": {...}}].
    Domains encode as [{"kind":"text"}], [{"kind":"enumeration",
    "values":[...]}], [{"kind":"range","of":{...}}] or
    [{"kind":"datetime"}]. *)

val model : Semantic_model.t -> string
(** The whole model: conditions plus error reports, pretty-printed. *)

val source_description :
  name:string -> ?url:string -> Semantic_model.t -> string
(** A named source description wrapping {!model} — the integration
    artifact the paper's mediator scenario consumes. *)
