(** Deeper typing of extracted value domains.

    An extractor client that wants to *query* a source needs more than
    the surface strings: whether an enumeration is numeric, whether its
    values encode price buckets with bounds, whether a list is a month
    list.  This analysis refines {!Condition.domain} values into typed
    descriptions a mediator can translate constraints against. *)

type bucket = {
  label : string;          (** the option as displayed *)
  low : float option;      (** lower bound, if the wording has one *)
  high : float option;     (** upper bound *)
}

type analysis =
  | Free_text
  | Numeric_values of float list
      (** every value parses as a number (years, counts, sizes) *)
  | Money_buckets of bucket list
      (** price-range wording: "under $5", "$5 to $20", "above $20" *)
  | Month_names
  | Categorical of string list
      (** a plain closed vocabulary *)
  | Composite_range of analysis
  | Composite_datetime

val parse_bucket : string -> bucket
(** [parse_bucket "under $5"] = [{label; low = None; high = Some 5.}];
    ["$5 to $20"] has both bounds; wording without numbers has
    neither. *)

val analyze : Condition.domain -> analysis
(** Refine a domain.  An enumeration is [Money_buckets] when at least
    half its values carry a parsed bound, [Numeric_values] when all
    values are numbers, [Month_names] when all are months. *)

val covers : analysis -> float -> bool
(** [covers analysis v]: can the domain express the numeric value [v]?
    For [Money_buckets] some bucket must admit it; for
    [Numeric_values], the value must be listed; other analyses return
    [false]. *)

val pp : Format.formatter -> analysis -> unit
