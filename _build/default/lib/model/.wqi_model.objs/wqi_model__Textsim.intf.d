lib/model/textsim.mli:
