lib/model/domain_analysis.mli: Condition Format
