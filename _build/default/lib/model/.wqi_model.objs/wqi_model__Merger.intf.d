lib/model/merger.mli: Condition Semantic_model
