lib/model/textsim.ml: Condition List String
