lib/model/merger.ml: Condition Fmt Hashtbl Int List Semantic_model Set
