lib/model/condition.mli: Format
