lib/model/operator.mli: Condition Format
