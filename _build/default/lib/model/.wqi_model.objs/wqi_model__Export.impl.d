lib/model/export.ml: Buffer Char Condition List Printf Semantic_model String
