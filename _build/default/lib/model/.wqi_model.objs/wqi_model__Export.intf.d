lib/model/export.mli: Condition Semantic_model
