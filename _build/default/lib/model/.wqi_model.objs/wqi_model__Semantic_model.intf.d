lib/model/semantic_model.mli: Condition Format
