lib/model/condition.ml: Buffer Char Fmt List String
