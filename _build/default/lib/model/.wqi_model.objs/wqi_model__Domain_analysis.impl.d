lib/model/domain_analysis.ml: Condition Fmt List Option String
