lib/model/semantic_model.ml: Condition Fmt List
