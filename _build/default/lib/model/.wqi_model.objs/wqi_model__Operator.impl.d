lib/model/operator.ml: Condition Fmt Hashtbl List String
