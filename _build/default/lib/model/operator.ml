type kind =
  | Contains
  | Contains_all
  | Contains_any
  | Equals
  | Starts_with
  | Ends_with
  | Less_than
  | Greater_than
  | Between
  | Sounds_like
  | Unknown of string

let contains_substring ~needle haystack =
  let n = String.length needle and h = String.length haystack in
  let rec at i =
    i + n <= h && (String.sub haystack i n = needle || at (i + 1))
  in
  n > 0 && at 0

(* Rule order matters: more specific wording first ("contains all" before
   "contains"; "exact start" is a prefix match, not equality). *)
let rules =
  [ ([ "all words"; "all of the words"; "contains all" ], Contains_all);
    ([ "any word"; "any of the words"; "contains any" ], Contains_any);
    ([ "exact start"; "start of"; "starts with"; "start with"; "begins with";
       "begin with"; "prefix" ],
     Starts_with);
    ([ "ends with"; "end with"; "suffix" ], Ends_with);
    ([ "exact"; "equal"; "is exactly"; "whole word"; "full name" ], Equals);
    ([ "at most"; "less"; "under"; "before"; "below"; "fewer"; "up to";
       "or earlier"; "maximum"; "max" ],
     Less_than);
    ([ "at least"; "greater"; "more than"; "over"; "after"; "above";
       "or later"; "minimum"; "min" ],
     Greater_than);
    ([ "between"; "range" ], Between);
    ([ "similar"; "sounds like"; "like" ], Sounds_like);
    ([ "contain"; "keyword"; "substring"; "phrase"; "word" ], Contains) ]

let classify wording =
  let w = String.lowercase_ascii (String.trim wording) in
  let matched =
    List.find_opt
      (fun (needles, _) ->
         List.exists (fun needle -> contains_substring ~needle w) needles)
      rules
  in
  match matched with
  | Some (_, kind) -> kind
  | None -> Unknown wording

let classify_all operators =
  let seen = Hashtbl.create 8 in
  List.filter_map
    (fun wording ->
       let kind = classify wording in
       if Hashtbl.mem seen kind then None
       else begin
         Hashtbl.replace seen kind ();
         Some kind
       end)
    operators

let default_for (domain : Condition.domain) =
  match domain with
  | Condition.Text -> Contains
  | Condition.Enumeration _ -> Equals
  | Condition.Range _ -> Between
  | Condition.Datetime -> Equals

let name = function
  | Contains -> "contains"
  | Contains_all -> "contains-all"
  | Contains_any -> "contains-any"
  | Equals -> "equals"
  | Starts_with -> "starts-with"
  | Ends_with -> "ends-with"
  | Less_than -> "less-than"
  | Greater_than -> "greater-than"
  | Between -> "between"
  | Sounds_like -> "sounds-like"
  | Unknown w -> "unknown(" ^ w ^ ")"

let pp ppf k = Fmt.string ppf (name k)

let equal a b = a = b
