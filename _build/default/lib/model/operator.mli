(** Canonicalization of operator wording.

    Extracted operators are surface strings ("Start of last name",
    "contains all words", "exact phrase").  Integration needs them
    mapped onto a small algebra so that a mediator can translate a
    user's constraint into each source's vocabulary — the translation
    step of the paper's mediator scenario. *)

type kind =
  | Contains        (** keyword / substring containment *)
  | Contains_all    (** all words must appear *)
  | Contains_any    (** any word may appear *)
  | Equals          (** exact match *)
  | Starts_with
  | Ends_with
  | Less_than       (** before / under / at most / less than *)
  | Greater_than    (** after / over / at least / more than *)
  | Between
  | Sounds_like     (** similar / like *)
  | Unknown of string  (** unrecognized wording, kept verbatim *)

val classify : string -> kind
(** [classify wording] maps surface wording to its canonical kind. *)

val classify_all : string list -> kind list
(** Classify each operator of a condition, deduplicated, order kept. *)

val default_for : Condition.domain -> kind
(** The implicit operator of a condition with no explicit modifiers:
    [Contains] for text, [Equals] for enumerations, [Between] for
    ranges, [Equals] for datetimes (Section 1: keyword search "by an
    implicit contains operator"). *)

val name : kind -> string
(** Stable lowercase name ("contains", "equals", ...). *)

val pp : Format.formatter -> kind -> unit
val equal : kind -> kind -> bool
