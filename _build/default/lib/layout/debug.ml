module Dom = Wqi_html.Dom

let widget_sketch node width =
  let clip s =
    if String.length s > width then String.sub s 0 width else s
  in
  let fill left body right =
    let inner = max 0 (width - String.length left - String.length right) in
    let body =
      if String.length body >= inner then String.sub body 0 inner
      else body ^ String.make (inner - String.length body) '.'
    in
    clip (left ^ body ^ right)
  in
  match Dom.name node with
  | "input" ->
    (match String.lowercase_ascii (Dom.attr_default "type" ~default:"text" node) with
     | "radio" -> "(_)"
     | "checkbox" -> "[_]"
     | "submit" | "reset" | "button" | "image" ->
       fill "<" (Dom.attr_default "value" ~default:"" node) ">"
     | _ -> fill "[" "" "]")
  | "select" ->
    let first =
      match Dom.find_first (Dom.is_element ~named:"option") node with
      | Some opt -> String.trim (Dom.text_content opt)
      | None -> ""
    in
    fill "[v " first "]"
  | "textarea" -> fill "[" "" "]"
  | "button" -> fill "<" (String.trim (Dom.text_content node)) ">"
  | "img" -> fill "#" (Dom.attr_default "alt" ~default:"" node) "#"
  | _ -> clip "?"

let ascii ?(columns = 100) items =
  if items = [] then ""
  else begin
    let bottom =
      List.fold_left
        (fun acc { Engine.box; _ } -> max acc box.Geometry.y2)
        0 items
    in
    let rows = 1 + (bottom / Style.line_height) in
    let grid = Array.init rows (fun _ -> Bytes.make columns ' ') in
    let draw row col s =
      if row >= 0 && row < rows then
        String.iteri
          (fun i c ->
             let col = col + i in
             if col >= 0 && col < columns then Bytes.set grid.(row) col c)
          s
    in
    List.iter
      (fun { Engine.item; box } ->
         let row = Geometry.center_y box / Style.line_height in
         let col = box.Geometry.x1 / Style.char_width in
         let cell_width =
           max 1 ((Geometry.width box + Style.char_width - 1) / Style.char_width)
         in
         match item with
         | Engine.Text_run s -> draw row col s
         | Engine.Widget node -> draw row col (widget_sketch node cell_width))
      items;
    let b = Buffer.create (rows * (columns + 1)) in
    Array.iter
      (fun line ->
         let s = Bytes.to_string line in
         (* Trim trailing spaces per line. *)
         let n = ref (String.length s) in
         while !n > 0 && s.[!n - 1] = ' ' do decr n done;
         Buffer.add_string b (String.sub s 0 !n);
         Buffer.add_char b '\n')
      grid;
    Buffer.contents b
  end

let ascii_of_html ?width ?columns html =
  ascii ?columns (Engine.render ?width (Wqi_html.Parser.parse html))
