(** Bounding boxes and the spatial relations used by the 2P grammar.

    Coordinates are integer pixels with the origin at the top-left of the
    page: [x] grows rightward, [y] grows downward.  A box records its left,
    top, right and bottom edges ([x2 >= x1], [y2 >= y1]).

    The relations mirror the visual conventions the paper's productions
    rely on (Section 4.1): left-of / above with adjacency implied, edge
    alignment with small tolerances, and gap distances used by
    preferences. *)

type box = { x1 : int; y1 : int; x2 : int; y2 : int }

val make : x1:int -> y1:int -> x2:int -> y2:int -> box
(** [make ~x1 ~y1 ~x2 ~y2] builds a box, normalizing flipped edges. *)

val origin : box
(** The degenerate box at (0, 0). *)

val width : box -> int
val height : box -> int

val center_x : box -> int
val center_y : box -> int

val union : box -> box -> box
(** Smallest box covering both arguments. *)

val union_all : box list -> box
(** [union_all boxes] folds {!union}; the empty list yields {!origin}. *)

val contains : box -> box -> bool
(** [contains outer inner] tests full inclusion (edges may touch). *)

val h_overlap : box -> box -> int
(** Length of the horizontal projection shared by the two boxes
    (0 when disjoint). *)

val v_overlap : box -> box -> int
(** Length of the vertical projection shared by the two boxes. *)

val h_gap : box -> box -> int
(** Horizontal distance between the closest vertical edges; 0 when the
    horizontal projections overlap. *)

val v_gap : box -> box -> int
(** Vertical distance between the closest horizontal edges; 0 when the
    vertical projections overlap. *)

val distance : box -> box -> float
(** Euclidean distance between box centers, used by proximity
    preferences and by the baseline heuristic extractor. *)

val left_of : ?max_gap:int -> box -> box -> bool
(** [left_of a b] holds when [a] sits to the left of [b] on roughly the
    same visual row: [a]'s right edge precedes [b]'s left edge, their
    vertical projections overlap, and the horizontal gap is at most
    [max_gap] (default 60). *)

val above : ?max_gap:int -> box -> box -> bool
(** [above a b] holds when [a] sits above [b] in roughly the same visual
    column (horizontal projections overlap, gap at most [max_gap],
    default 40). *)

val below : ?max_gap:int -> box -> box -> bool
(** [below a b] is [above b a]. *)

val same_row : box -> box -> bool
(** Vertical projections overlap by at least half the smaller height. *)

val same_column : box -> box -> bool
(** Horizontal projections overlap by at least half the smaller width. *)

val left_aligned : ?tolerance:int -> box -> box -> bool
(** Left edges within [tolerance] pixels (default 6). *)

val top_aligned : ?tolerance:int -> box -> box -> bool
val bottom_aligned : ?tolerance:int -> box -> box -> bool

val pp : Format.formatter -> box -> unit
val equal : box -> box -> bool
val compare_reading_order : box -> box -> int
(** Orders boxes top-to-bottom then left-to-right, with a small tolerance
    so that boxes on the same visual line compare by [x]. *)
