lib/layout/style.ml: Char List String Wqi_html
