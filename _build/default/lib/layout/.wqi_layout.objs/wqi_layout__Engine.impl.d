lib/layout/engine.ml: Array Buffer Geometry List String Style Wqi_html
