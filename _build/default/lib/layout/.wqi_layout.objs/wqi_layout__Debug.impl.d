lib/layout/debug.ml: Array Buffer Bytes Engine Geometry List String Style Wqi_html
