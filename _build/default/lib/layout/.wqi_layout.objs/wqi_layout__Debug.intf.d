lib/layout/debug.mli: Engine
