lib/layout/geometry.mli: Format
