lib/layout/geometry.ml: Fmt List
