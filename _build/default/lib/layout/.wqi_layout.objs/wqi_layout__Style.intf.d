lib/layout/style.mli: Wqi_html
