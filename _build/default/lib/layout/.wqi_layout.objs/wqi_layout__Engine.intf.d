lib/layout/engine.mli: Geometry Wqi_html
