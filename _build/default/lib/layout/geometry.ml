type box = { x1 : int; y1 : int; x2 : int; y2 : int }

let make ~x1 ~y1 ~x2 ~y2 =
  { x1 = min x1 x2; y1 = min y1 y2; x2 = max x1 x2; y2 = max y1 y2 }

let origin = { x1 = 0; y1 = 0; x2 = 0; y2 = 0 }

let width b = b.x2 - b.x1
let height b = b.y2 - b.y1

let center_x b = (b.x1 + b.x2) / 2
let center_y b = (b.y1 + b.y2) / 2

let union a b =
  { x1 = min a.x1 b.x1;
    y1 = min a.y1 b.y1;
    x2 = max a.x2 b.x2;
    y2 = max a.y2 b.y2 }

let union_all = function
  | [] -> origin
  | b :: rest -> List.fold_left union b rest

let contains outer inner =
  outer.x1 <= inner.x1 && outer.y1 <= inner.y1
  && outer.x2 >= inner.x2 && outer.y2 >= inner.y2

let h_overlap a b = max 0 (min a.x2 b.x2 - max a.x1 b.x1)
let v_overlap a b = max 0 (min a.y2 b.y2 - max a.y1 b.y1)

let h_gap a b =
  if h_overlap a b > 0 then 0
  else max (b.x1 - a.x2) (a.x1 - b.x2)

let v_gap a b =
  if v_overlap a b > 0 then 0
  else max (b.y1 - a.y2) (a.y1 - b.y2)

let distance a b =
  let dx = float_of_int (center_x a - center_x b) in
  let dy = float_of_int (center_y a - center_y b) in
  sqrt ((dx *. dx) +. (dy *. dy))

let left_of ?(max_gap = 60) a b =
  a.x2 <= b.x1 + 2
  && b.x1 - a.x2 <= max_gap
  && v_overlap a b > 0

let above ?(max_gap = 40) a b =
  a.y2 <= b.y1 + 2
  && b.y1 - a.y2 <= max_gap
  && h_overlap a b > 0

let below ?max_gap a b = above ?max_gap b a

let same_row a b =
  let smaller = max 1 (min (height a) (height b)) in
  2 * v_overlap a b >= smaller

let same_column a b =
  let smaller = max 1 (min (width a) (width b)) in
  2 * h_overlap a b >= smaller

let left_aligned ?(tolerance = 6) a b = abs (a.x1 - b.x1) <= tolerance
let top_aligned ?(tolerance = 6) a b = abs (a.y1 - b.y1) <= tolerance
let bottom_aligned ?(tolerance = 6) a b = abs (a.y2 - b.y2) <= tolerance

let pp ppf b = Fmt.pf ppf "(%d,%d)-(%d,%d)" b.x1 b.y1 b.x2 b.y2

let equal a b = a.x1 = b.x1 && a.y1 = b.y1 && a.x2 = b.x2 && a.y2 = b.y2

let compare_reading_order a b =
  if same_row a b then compare (a.x1, a.y1) (b.x1, b.y1)
  else compare (a.y1, a.x1) (b.y1, b.x1)
