module Dom = Wqi_html.Dom

let char_width = 7
let line_height = 18
let text_height = 15
let word_spacing = char_width
let page_width = 800

(* Count character cells: a UTF-8 lead byte or an ASCII byte opens a cell,
   continuation bytes (0b10xxxxxx) do not. *)
let utf8_cells s =
  let cells = ref 0 in
  String.iter
    (fun c -> if Char.code c land 0xC0 <> 0x80 then incr cells)
    s;
  !cells

let text_width s = char_width * utf8_cells s

let int_attr key ~default node =
  match Dom.attr key node with
  | Some v -> (try max 0 (int_of_string (String.trim v)) with Failure _ -> default)
  | None -> default

let select_size node =
  (* Width follows the longest option label; height follows the [size]
     attribute (a drop-down when size <= 1, a list box otherwise). *)
  let options = Dom.find_all (Dom.is_element ~named:"option") node in
  let longest =
    List.fold_left
      (fun acc opt -> max acc (text_width (String.trim (Dom.text_content opt))))
      (4 * char_width) options
  in
  let rows = int_attr "size" ~default:1 node in
  let h = if rows <= 1 then 22 else 4 + (line_height * rows) in
  (longest + 24, h)

let input_size node =
  let input_type =
    String.lowercase_ascii (Dom.attr_default "type" ~default:"text" node)
  in
  match input_type with
  | "hidden" -> None
  | "text" | "password" | "search" | "" ->
    let size = int_attr "size" ~default:20 node in
    Some ((char_width + 1) * size + 6, 22)
  | "radio" | "checkbox" -> Some (13, 13)
  | "submit" | "reset" | "button" ->
    let label = Dom.attr_default "value" ~default:"Submit" node in
    Some (text_width label + 24, 24)
  | "image" ->
    Some (int_attr "width" ~default:60 node, int_attr "height" ~default:24 node)
  | "file" -> Some (220, 24)
  | _ ->
    (* Unknown input types render like text boxes. *)
    let size = int_attr "size" ~default:20 node in
    Some ((char_width + 1) * size + 6, 22)

let widget_size node =
  match Dom.name node with
  | "input" -> input_size node
  | "select" -> Some (select_size node)
  | "textarea" ->
    let cols = int_attr "cols" ~default:20 node in
    let rows = int_attr "rows" ~default:2 node in
    Some ((char_width * cols) + 6, (line_height * rows) + 6)
  | "button" ->
    let label = String.trim (Dom.text_content node) in
    let label = if label = "" then "Submit" else label in
    Some (text_width label + 24, 24)
  | "img" ->
    Some (int_attr "width" ~default:50 node, int_attr "height" ~default:50 node)
  | _ -> None
