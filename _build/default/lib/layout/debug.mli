(** ASCII rendering of a laid-out page, for debugging spatial patterns.

    The parser's behaviour is entirely driven by token geometry, so
    "what does the layout engine think this form looks like" is the
    first question when an extraction surprises.  This module draws the
    laid atoms on a character grid:

    {v
    Author:    [............]
               (_) First name/initials and last name
    v}

    Text runs render as themselves; textboxes as [=[...]=],
    selection lists as [[v ...]], radio buttons as [(_)], checkboxes
    as [[_]], buttons as [<...>], images as [#...#]. *)

val ascii : ?columns:int -> Engine.laid list -> string
(** [ascii items] renders the atoms on a grid of [columns] characters
    (default 100).  One character cell covers {!Style.char_width}
    horizontal pixels and one line covers {!Style.line_height} vertical
    pixels; overlapping content is drawn in paint order (later atoms
    win). *)

val ascii_of_html : ?width:int -> ?columns:int -> string -> string
(** Convenience: parse, lay out and render markup in one call. *)
