(** Deterministic rendering metrics.

    Substitutes for the browser layout engine the paper used (IE's DOM
    API): a monospace font model and fixed intrinsic widget sizes.  Only
    relative spatial relations matter to the parser, so any consistent
    metric reproduces the paper's behaviour. *)

val char_width : int
(** Advance width of one character, in pixels. *)

val line_height : int
(** Height of a text line box. *)

val text_height : int
(** Height of a rendered text run (slightly below {!line_height}). *)

val word_spacing : int
(** Width of an inter-word space. *)

val page_width : int
(** Default page width used when none is specified. *)

val text_width : string -> int
(** [text_width s] is the rendered width of a text run.  Multi-byte UTF-8
    sequences count as a single character cell. *)

val widget_size : Wqi_html.Dom.t -> (int * int) option
(** [widget_size node] is the intrinsic [(width, height)] of a form
    widget or image element, or [None] when [node] is not a widget (or is
    an invisible one such as [<input type="hidden">]).  Sizes honour the
    [size], [cols], [rows], [width], [height] and [value] attributes as
    browsers do. *)
