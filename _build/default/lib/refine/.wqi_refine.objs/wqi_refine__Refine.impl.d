lib/refine/refine.ml: Hashtbl List Option Wqi_core Wqi_layout Wqi_model Wqi_token
