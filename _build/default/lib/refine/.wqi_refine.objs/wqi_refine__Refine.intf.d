lib/refine/refine.mli: Wqi_core Wqi_model
