module Condition = Wqi_model.Condition
module Semantic_model = Wqi_model.Semantic_model
module Token = Wqi_token.Token
module Geometry = Wqi_layout.Geometry

type knowledge = {
  attribute_support : (string * int) list;
}

let learn extractions =
  let counts = Hashtbl.create 32 in
  List.iter
    (fun conditions ->
       let labels =
         List.sort_uniq compare
           (List.filter_map
              (fun (c : Condition.t) ->
                 let l = Condition.normalize_label c.attribute in
                 if l = "" then None else Some l)
              conditions)
       in
       List.iter
         (fun l ->
            Hashtbl.replace counts l
              (1 + Option.value ~default:0 (Hashtbl.find_opt counts l)))
         labels)
    extractions;
  { attribute_support =
      Hashtbl.fold (fun l n acc -> (l, n) :: acc) counts []
      |> List.sort (fun (la, a) (lb, b) ->
          match compare b a with 0 -> compare la lb | c -> c) }

let known k ?(min_support = 1) label =
  let label = Condition.normalize_label label in
  List.exists
    (fun (l, n) -> l = label && n >= min_support)
    k.attribute_support

let similarity = Wqi_model.Textsim.similarity

let best_match k ?(threshold = 0.55) label =
  List.fold_left
    (fun best (candidate, _support) ->
       let score = similarity label candidate in
       match best with
       | Some (_, best_score) when best_score >= score -> best
       | _ -> if score >= threshold then Some (candidate, score) else best)
    None k.attribute_support
  |> Option.map fst

(* ------------------------------------------------------------------ *)
(* Refinement                                                          *)
(* ------------------------------------------------------------------ *)

let condition_label (c : Condition.t) = Condition.to_string c

(* Conflict resolution: keep the condition whose attribute the domain
   knows; drop its rival when the rival's attribute is unknown. *)
let resolve_conflicts k (model : Semantic_model.t) =
  let dropped = ref [] in
  let errors =
    List.filter
      (fun err ->
         match err with
         | Semantic_model.Missing _ -> true
         | Semantic_model.Conflict (_tok, a, b) ->
           let find label =
             List.find_opt
               (fun c -> condition_label c = label)
               model.conditions
           in
           (match (find a, find b) with
            | Some ca, Some cb ->
              let ka = known k ca.attribute and kb = known k cb.attribute in
              if ka && not kb then begin
                dropped := cb :: !dropped;
                false
              end
              else if kb && not ka then begin
                dropped := ca :: !dropped;
                false
              end
              else true
            | _ -> true))
      model.errors
  in
  let conditions =
    List.filter (fun c -> not (List.memq c !dropped)) model.conditions
  in
  { Semantic_model.conditions; errors }

(* Missing-element recovery: pair an unclaimed label-like text token with
   an unclaimed field token beside or below it, when the label resembles
   a known domain attribute. *)
let recover_missing k (extraction : Wqi_core.Extractor.extraction)
    (model : Semantic_model.t) =
  let missing_ids =
    List.filter_map
      (function Semantic_model.Missing (tok, _) -> Some tok | _ -> None)
      model.errors
  in
  let token_by_id id =
    List.find_opt (fun (t : Token.t) -> t.id = id) extraction.tokens
  in
  let missing_tokens = List.filter_map token_by_id missing_ids in
  let texts =
    List.filter (fun (t : Token.t) -> t.kind = Token.Text) missing_tokens
  in
  let fields = List.filter Token.is_field missing_tokens in
  let recovered = ref [] in
  let claimed = Hashtbl.create 8 in
  List.iter
    (fun (label_tok : Token.t) ->
       match best_match k label_tok.sval with
       | None -> ()
       | Some _known_attr ->
         (* Associate with the closest unclaimed field left, right, above
            or below the label. *)
         let candidate =
           List.fold_left
             (fun best (f : Token.t) ->
                if Hashtbl.mem claimed f.id then best
                else
                  let near =
                    Geometry.left_of ~max_gap:100 label_tok.box f.box
                    || Geometry.left_of ~max_gap:100 f.box label_tok.box
                    || Geometry.above ~max_gap:40 label_tok.box f.box
                    || Geometry.above ~max_gap:40 f.box label_tok.box
                  in
                  if not near then best
                  else
                    let d = Geometry.distance label_tok.box f.box in
                    match best with
                    | Some (_, bd) when bd <= d -> best
                    | _ -> Some (f, d))
             None fields
         in
         (match candidate with
          | None -> ()
          | Some (field, _) ->
            Hashtbl.replace claimed field.id ();
            Hashtbl.replace claimed label_tok.id ();
            let domain =
              match field.kind with
              | Token.Selection -> Condition.Enumeration field.options
              | Token.Radio | Token.Checkbox ->
                Condition.Enumeration [ field.sval ]
              | Token.Textbox | Token.Text | Token.Button | Token.Image ->
                Condition.Text
            in
            recovered :=
              Condition.make ~attribute:label_tok.sval domain :: !recovered))
    texts;
  let errors =
    List.filter
      (function
        | Semantic_model.Missing (tok, _) -> not (Hashtbl.mem claimed tok)
        | Semantic_model.Conflict _ -> true)
      model.errors
  in
  { Semantic_model.conditions = model.conditions @ List.rev !recovered;
    errors }

let refine k extraction =
  let model = resolve_conflicts k extraction.Wqi_core.Extractor.model in
  recover_missing k extraction model
