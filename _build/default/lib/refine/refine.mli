(** Cross-interface refinement (the paper's first two future-work items,
    Section 7).

    Query interfaces of one domain share an attribute vocabulary, so the
    correctly parsed conditions of sibling sources can help a struggling
    extraction: "to resolve the conflict in a specific query interface,
    we can leverage the correctly parsed conditions from other query
    interfaces of the same domain (e.g., using the extraction of
    flyairnorth.com to help the understanding of aa.com).  Also, to
    handle missing elements, we find it promising to explore matching
    non-associated tokens by their textual similarity."

    {!learn} accumulates a domain's attribute vocabulary from several
    extractions; {!refine} then applies two repairs to a single
    extraction:

    - {b conflict resolution}: when two conditions claim the same token,
      drop the one whose attribute the domain has never seen (provided
      the other is known);
    - {b missing-element recovery}: an unclaimed text token whose label
      is textually similar to a known domain attribute, sitting next to
      an unclaimed input field, is promoted to a new condition. *)

type knowledge = {
  attribute_support : (string * int) list;
      (** Normalized attribute labels with the number of sibling sources
          exhibiting them, most-supported first. *)
}

val learn : Wqi_model.Condition.t list list -> knowledge
(** [learn extractions] builds domain knowledge from the condition sets
    of sibling interfaces (typically the extractor's own output — no
    ground truth involved). *)

val known : knowledge -> ?min_support:int -> string -> bool
(** [known k label] — the normalized label occurs with at least
    [min_support] (default 1) sources' support. *)

val similarity : string -> string -> float
(** Character-bigram Dice similarity of normalized labels, in [0, 1];
    1.0 for equal labels.  Used to match stray tokens against the
    domain vocabulary. *)

val best_match : knowledge -> ?threshold:float -> string -> string option
(** [best_match k label] is the most similar known attribute at or above
    [threshold] (default 0.55). *)

val refine :
  knowledge ->
  Wqi_core.Extractor.extraction ->
  Wqi_model.Semantic_model.t
(** [refine k extraction] returns the repaired semantic model.  The
    input extraction is not modified; unresolvable errors are kept. *)
