module Geometry = Wqi_layout.Geometry

let box (i : Instance.t) = i.box

let left ?max_gap a b = Geometry.left_of ?max_gap (box a) (box b)
let above ?max_gap a b = Geometry.above ?max_gap (box a) (box b)
let below ?max_gap a b = Geometry.below ?max_gap (box a) (box b)

let same_row a b = Geometry.same_row (box a) (box b)
let same_column a b = Geometry.same_column (box a) (box b)

let left_aligned ?tolerance a b = Geometry.left_aligned ?tolerance (box a) (box b)
let top_aligned ?tolerance a b = Geometry.top_aligned ?tolerance (box a) (box b)
let bottom_aligned ?tolerance a b =
  Geometry.bottom_aligned ?tolerance (box a) (box b)

let h_gap a b = Geometry.h_gap (box a) (box b)
let v_gap a b = Geometry.v_gap (box a) (box b)
let distance a b = Geometry.distance (box a) (box b)

let width i = Geometry.width (box i)
let height i = Geometry.height (box i)
