(** 2P grammars (Definition 1): ⟨Σ, N, s, Pd, Pf⟩.

    A 2P grammar couples productions (pattern construction knowledge)
    with preferences (ambiguity-resolution knowledge).  Grammars are
    plain values: the standard derived grammar lives in
    [Wqi_stdgrammar], and applications may build their own (Section 7
    discusses e-commerce navigation menus as another instance). *)

type t = {
  terminals : Symbol.t list;
  start : Symbol.t;
  productions : Production.t list;
  preferences : Preference.t list;
}

val make :
  terminals:Symbol.t list ->
  start:Symbol.t ->
  productions:Production.t list ->
  ?preferences:Preference.t list ->
  unit ->
  t

val nonterminals : t -> Symbol.t list
(** All nonterminals mentioned as a head or component, in first-seen
    order. *)

val productions_with_head : t -> Symbol.t -> Production.t list

val parents_of : t -> Symbol.t -> Symbol.t list
(** Symbols that appear as the head of a production having the given
    symbol among its components (excluding self-recursion). *)

val extend :
  t ->
  ?productions:Production.t list ->
  ?preferences:Preference.t list ->
  unit ->
  t
(** Augment a grammar with new rules — the extensibility story of
    Section 4.1: parsing machinery is untouched. *)

val validate : t -> (unit, string list) result
(** Checks well-formedness: the start symbol is a nonterminal with at
    least one production; every component symbol is a declared terminal
    or the head of some production; production names are unique; the
    d-edge graph over distinct symbols is acyclic (self-recursion is
    allowed — it is what per-symbol fix-point iteration handles). *)

val pp : Format.formatter -> t -> unit
(** Figure-6-style listing: every production as [head -> components] and
    every preference as [winner beats loser].  Constraints and
    constructors are code, so only their presence is shown. *)

val stats : t -> int * int * int * int
(** [(terminals, nonterminals, productions, preferences)] — the numbers
    the paper quotes for its derived grammar (16/39/82 + preferences). *)
