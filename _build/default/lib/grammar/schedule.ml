type t = {
  order : Symbol.t list;
  transformed : (Preference.t * Symbol.t list) list;
  relaxed : Preference.t list;
}

module Graph = struct
  (* Directed graph over symbols; an edge a -> b reads "a is scheduled
     before b". *)
  type g = { mutable succ : Symbol.Set.t Symbol.Map.t }

  let create () = { succ = Symbol.Map.empty }

  let add_node g sym =
    if not (Symbol.Map.mem sym g.succ) then
      g.succ <- Symbol.Map.add sym Symbol.Set.empty g.succ

  let successors g sym =
    match Symbol.Map.find_opt sym g.succ with
    | Some s -> s
    | None -> Symbol.Set.empty

  let add_edge g a b =
    add_node g a;
    add_node g b;
    g.succ <- Symbol.Map.add a (Symbol.Set.add b (successors g a)) g.succ

  let remove_edge g a b =
    g.succ <- Symbol.Map.add a (Symbol.Set.remove b (successors g a)) g.succ

  (* Is [target] reachable from [source]?  Used as the cycle test before
     inserting the edge target -> source ... i.e. adding a -> b creates a
     cycle iff a is reachable from b. *)
  let reaches g source target =
    let visited = ref Symbol.Set.empty in
    let rec go sym =
      Symbol.equal sym target
      || (if Symbol.Set.mem sym !visited then false
          else begin
            visited := Symbol.Set.add sym !visited;
            Symbol.Set.exists go (successors g sym)
          end)
    in
    go source

  let would_cycle g a b = reaches g b a

  (* Kahn's algorithm with name-ordered tie-breaking for determinism. *)
  let topological_order g =
    let indegree = Hashtbl.create 64 in
    Symbol.Map.iter (fun sym _ ->
        if not (Hashtbl.mem indegree sym) then Hashtbl.replace indegree sym 0;
        Symbol.Set.iter
          (fun b ->
             let d = Option.value ~default:0 (Hashtbl.find_opt indegree b) in
             Hashtbl.replace indegree b (d + 1))
          (successors g sym))
      g.succ;
    let ready =
      Hashtbl.fold (fun sym d acc -> if d = 0 then sym :: acc else acc)
        indegree []
      |> List.sort Symbol.compare
      |> ref
    in
    let order = ref [] in
    let rec loop () =
      match !ready with
      | [] -> ()
      | sym :: rest ->
        ready := rest;
        order := sym :: !order;
        let newly_ready =
          Symbol.Set.fold
            (fun b acc ->
               let d = Hashtbl.find indegree b - 1 in
               Hashtbl.replace indegree b d;
               if d = 0 then b :: acc else acc)
            (successors g sym) []
        in
        ready := List.merge Symbol.compare (List.sort Symbol.compare newly_ready) !ready;
        loop ()
    in
    loop ();
    List.rev !order
end

let build (g : Grammar.t) =
  (match Grammar.validate g with
   | Ok () -> ()
   | Error errs ->
     invalid_arg
       (Fmt.str "Schedule.build: invalid grammar: %a"
          Fmt.(list ~sep:(any "; ") string)
          errs));
  let graph = Graph.create () in
  List.iter (fun sym -> Graph.add_node graph sym) (Grammar.nonterminals g);
  (* d-edges: every (non-self, nonterminal) component precedes its head. *)
  List.iter
    (fun (p : Production.t) ->
       List.iter
         (fun c ->
            if (not (Symbol.is_terminal c)) && not (Symbol.equal c p.head)
            then Graph.add_edge graph c p.head)
         p.components)
    g.productions;
  (* r-edges, added greedily with transformation as the fallback. *)
  let transformed = ref [] in
  let relaxed = ref [] in
  List.iter
    (fun (r : Preference.t) ->
       if not (Preference.same_symbol r) then begin
         if not (Graph.would_cycle graph r.winner r.loser) then
           Graph.add_edge graph r.winner r.loser
         else begin
           (* Transformation (Figure 13): winner before each parent of the
              loser, so false parents are still never generated. *)
           let parents =
             List.filter
               (fun p -> not (Symbol.equal p r.winner))
               (Grammar.parents_of g r.loser)
           in
           let ok =
             parents <> []
             && List.for_all
                  (fun p -> not (Graph.would_cycle graph r.winner p))
                  parents
           in
           if ok then begin
             List.iter (fun p -> Graph.add_edge graph r.winner p) parents;
             transformed := (r, parents) :: !transformed
           end
           else begin
             (* Roll back any partial insertion is unnecessary: edges are
                only added after the all-parents check. *)
             relaxed := r :: !relaxed
           end
         end
       end)
    g.preferences;
  ignore Graph.remove_edge;
  { order = Graph.topological_order graph;
    transformed = List.rev !transformed;
    relaxed = List.rev !relaxed }

let pp ppf t =
  Fmt.pf ppf "@[<v>order: %a%a%a@]"
    Fmt.(list ~sep:(any " -> ") Symbol.pp)
    t.order
    Fmt.(
      list ~sep:nop (fun ppf (r, parents) ->
          pf ppf "@,transformed %s -> {%a}" r.Preference.name
            (list ~sep:(any ", ") Symbol.pp)
            parents))
    t.transformed
    Fmt.(
      list ~sep:nop (fun ppf r ->
          pf ppf "@,relaxed %s" r.Preference.name))
    t.relaxed
