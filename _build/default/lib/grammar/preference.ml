type t = {
  name : string;
  winner : Symbol.t;
  loser : Symbol.t;
  conflict : Instance.t -> Instance.t -> bool;
  wins : Instance.t -> Instance.t -> bool;
}

let make ~name ~winner ~loser ?(conflict = fun _ _ -> true)
    ?(wins = fun _ _ -> true) () =
  { name; winner; loser; conflict; wins }

let same_symbol r = Symbol.equal r.winner r.loser

let pp ppf r =
  Fmt.pf ppf "%s: %a beats %a" r.name Symbol.pp r.winner Symbol.pp r.loser
