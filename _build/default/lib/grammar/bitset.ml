type t = { size : int; words : int array }

let bits_per_word = Sys.int_size

let words_for n = (n + bits_per_word - 1) / bits_per_word

let universe_size t = t.size

let empty n = { size = n; words = Array.make (max 1 (words_for n)) 0 }

let check t i =
  if i < 0 || i >= t.size then
    invalid_arg (Printf.sprintf "Bitset: index %d outside universe %d" i t.size)

let add t i =
  check t i;
  let words = Array.copy t.words in
  let w = i / bits_per_word and b = i mod bits_per_word in
  words.(w) <- words.(w) lor (1 lsl b);
  { t with words }

let singleton n i = add (empty n) i

let mem t i =
  check t i;
  let w = i / bits_per_word and b = i mod bits_per_word in
  t.words.(w) land (1 lsl b) <> 0

let binop op a b =
  if a.size <> b.size then invalid_arg "Bitset: universe mismatch";
  { size = a.size; words = Array.map2 op a.words b.words }

let union = binop ( lor )
let inter = binop ( land )

let popcount x =
  let rec go x acc = if x = 0 then acc else go (x lsr 1) (acc + (x land 1)) in
  go x 0

let cardinal t = Array.fold_left (fun acc w -> acc + popcount w) 0 t.words

let is_empty t = Array.for_all (fun w -> w = 0) t.words

let disjoint a b =
  if a.size <> b.size then invalid_arg "Bitset: universe mismatch";
  let n = Array.length a.words in
  let rec go i = i >= n || (a.words.(i) land b.words.(i) = 0 && go (i + 1)) in
  go 0

let subset a b =
  if a.size <> b.size then invalid_arg "Bitset: universe mismatch";
  let n = Array.length a.words in
  let rec go i =
    i >= n || (a.words.(i) land lnot b.words.(i) = 0 && go (i + 1))
  in
  go 0

let equal a b = a.size = b.size && a.words = b.words

let strict_subset a b = subset a b && not (equal a b)

let elements t =
  let acc = ref [] in
  for i = t.size - 1 downto 0 do
    if mem t i then acc := i :: !acc
  done;
  !acc

let of_list n items = List.fold_left add (empty n) items

let union_all n = List.fold_left union (empty n)

let hash t = Hashtbl.hash t.words

let pp ppf t =
  Fmt.pf ppf "{%a}" Fmt.(list ~sep:(any ",") int) (elements t)
