type t = {
  terminals : Symbol.t list;
  start : Symbol.t;
  productions : Production.t list;
  preferences : Preference.t list;
}

let make ~terminals ~start ~productions ?(preferences = []) () =
  { terminals; start; productions; preferences }

let nonterminals g =
  let seen = ref Symbol.Set.empty in
  let out = ref [] in
  let note sym =
    if (not (Symbol.is_terminal sym)) && not (Symbol.Set.mem sym !seen)
    then begin
      seen := Symbol.Set.add sym !seen;
      out := sym :: !out
    end
  in
  List.iter
    (fun (p : Production.t) ->
       note p.head;
       List.iter note p.components)
    g.productions;
  List.rev !out

let productions_with_head g sym =
  List.filter (fun (p : Production.t) -> Symbol.equal p.head sym) g.productions

let parents_of g sym =
  List.filter_map
    (fun (p : Production.t) ->
       if (not (Symbol.equal p.head sym))
       && List.exists (Symbol.equal sym) p.components
       then Some p.head
       else None)
    g.productions
  |> List.sort_uniq Symbol.compare

let extend g ?(productions = []) ?(preferences = []) () =
  { g with
    productions = g.productions @ productions;
    preferences = g.preferences @ preferences }

(* Depth-first cycle detection over the d-edge graph (head -> component),
   ignoring self-loops. *)
let d_graph_cycle g =
  let color : (Symbol.t, [ `Grey | `Black ]) Hashtbl.t = Hashtbl.create 64 in
  let children sym =
    List.concat_map
      (fun (p : Production.t) ->
         if Symbol.equal p.head sym then
           List.filter
             (fun c -> not (Symbol.equal c sym) && not (Symbol.is_terminal c))
             p.components
         else [])
      g.productions
    |> List.sort_uniq Symbol.compare
  in
  let exception Cycle of Symbol.t in
  let rec visit sym =
    match Hashtbl.find_opt color sym with
    | Some `Black -> ()
    | Some `Grey -> raise (Cycle sym)
    | None ->
      Hashtbl.replace color sym `Grey;
      List.iter visit (children sym);
      Hashtbl.replace color sym `Black
  in
  try
    List.iter (fun (p : Production.t) -> visit p.head) g.productions;
    None
  with Cycle sym -> Some sym

let validate g =
  let errors = ref [] in
  let err fmt = Fmt.kstr (fun s -> errors := s :: !errors) fmt in
  let heads =
    List.fold_left
      (fun acc (p : Production.t) -> Symbol.Set.add p.head acc)
      Symbol.Set.empty g.productions
  in
  let terminal_set = Symbol.Set.of_list g.terminals in
  if Symbol.is_terminal g.start then
    err "start symbol %a is a terminal" Symbol.pp g.start
  else if not (Symbol.Set.mem g.start heads) then
    err "start symbol %a has no production" Symbol.pp g.start;
  let names = Hashtbl.create 64 in
  List.iter
    (fun (p : Production.t) ->
       if Hashtbl.mem names p.name then
         err "duplicate production name %s" p.name;
       Hashtbl.replace names p.name ();
       if Symbol.is_terminal p.head then
         err "%s: terminal head %a" p.name Symbol.pp p.head;
       List.iter
         (fun c ->
            if Symbol.is_terminal c then begin
              if not (Symbol.Set.mem c terminal_set) then
                err "%s: undeclared terminal %a" p.name Symbol.pp c
            end
            else if not (Symbol.Set.mem c heads) then
              err "%s: component %a has no production" p.name Symbol.pp c)
         p.components)
    g.productions;
  (match d_graph_cycle g with
   | Some sym ->
     err "d-edge cycle through %a (mutual recursion between distinct \
          symbols is not schedulable)"
       Symbol.pp sym
   | None -> ());
  match !errors with [] -> Ok () | errs -> Error (List.rev errs)

let pp ppf g =
  Fmt.pf ppf "@[<v>terminals: %a@,start: %a@,@,productions:@,%a@,@,preferences:@,%a@]"
    Fmt.(list ~sep:(any " ") Symbol.pp)
    g.terminals Symbol.pp g.start
    Fmt.(list ~sep:cut (fun ppf p -> pf ppf "  %a" Production.pp p))
    g.productions
    Fmt.(list ~sep:cut (fun ppf r -> pf ppf "  %a" Preference.pp r))
    g.preferences

let stats g =
  ( List.length g.terminals,
    List.length (nonterminals g),
    List.length g.productions,
    List.length g.preferences )
