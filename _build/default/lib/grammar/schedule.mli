(** The 2P schedule graph (Section 5.2, Figures 12–13).

    Produces the symbol instantiation order that makes just-in-time
    pruning possible: components before heads (d-edges) and winners
    before losers (r-edges).  R-edges that would create a cycle are first
    *transformed* into indirect r-edges (winner before each parent of the
    loser); if a cycle persists they are *relaxed* (dropped) and the
    parser compensates with rollback. *)

type t = {
  order : Symbol.t list;
      (** Nonterminals in instantiation order.  Terminals are not listed:
          their instances are the input tokens. *)
  transformed : (Preference.t * Symbol.t list) list;
      (** Preferences whose direct r-edge was replaced by indirect edges
          to the listed parent symbols. *)
  relaxed : Preference.t list;
      (** Preferences contributing no scheduling constraint; their late
          pruning relies on rollback. *)
}

val build : Grammar.t -> t
(** [build g] requires [Grammar.validate g = Ok ()] (d-edges acyclic);
    raises [Invalid_argument] otherwise. *)

val pp : Format.formatter -> t -> unit
