module Self = struct
  type t =
    | Terminal of string
    | Nonterminal of string

  let compare a b =
    match a, b with
    | Terminal x, Terminal y -> String.compare x y
    | Nonterminal x, Nonterminal y -> String.compare x y
    | Terminal _, Nonterminal _ -> -1
    | Nonterminal _, Terminal _ -> 1
end

include Self

let terminal name = Terminal name
let nonterminal name = Nonterminal name

let name = function Terminal n | Nonterminal n -> n

let is_terminal = function Terminal _ -> true | Nonterminal _ -> false

let of_token_kind kind = Terminal (Wqi_token.Token.kind_name kind)

let equal a b = compare a b = 0

let pp ppf = function
  | Terminal n -> Fmt.pf ppf "'%s'" n
  | Nonterminal n -> Fmt.string ppf n

module Set = Set.Make (Self)
module Map = Map.Make (Self)
