(** Spatial-relation combinators over instances.

    Thin wrappers over {!Wqi_layout.Geometry} used to write production
    guards in a declarative style close to the paper's notation, e.g.
    [P5: TextOp -> Left(Attr, Val) ∧ Below(Op, Val)] becomes
    [fun [| attr; op; v |] -> Relation.left attr v && Relation.below op v].
    Adjacency is implied in all relations (Section 4.1), hence the
    default gap bounds. *)

val left : ?max_gap:int -> Instance.t -> Instance.t -> bool
(** [left a b]: [a] immediately left of [b], same visual row. *)

val above : ?max_gap:int -> Instance.t -> Instance.t -> bool
val below : ?max_gap:int -> Instance.t -> Instance.t -> bool

val same_row : Instance.t -> Instance.t -> bool
val same_column : Instance.t -> Instance.t -> bool

val left_aligned : ?tolerance:int -> Instance.t -> Instance.t -> bool
val top_aligned : ?tolerance:int -> Instance.t -> Instance.t -> bool
val bottom_aligned : ?tolerance:int -> Instance.t -> Instance.t -> bool

val h_gap : Instance.t -> Instance.t -> int
val v_gap : Instance.t -> Instance.t -> int
val distance : Instance.t -> Instance.t -> float

val width : Instance.t -> int
val height : Instance.t -> int
