lib/grammar/grammar.ml: Fmt Hashtbl List Preference Production Symbol
