lib/grammar/instance.ml: Bitset Fmt List Symbol Wqi_layout Wqi_model Wqi_token
