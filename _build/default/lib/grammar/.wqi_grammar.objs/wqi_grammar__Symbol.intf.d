lib/grammar/symbol.mli: Format Map Set Wqi_token
