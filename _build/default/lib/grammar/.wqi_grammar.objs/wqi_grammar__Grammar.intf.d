lib/grammar/grammar.mli: Format Preference Production Symbol
