lib/grammar/schedule.ml: Fmt Grammar Hashtbl List Option Preference Production Symbol
