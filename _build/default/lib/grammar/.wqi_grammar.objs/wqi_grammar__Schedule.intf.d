lib/grammar/schedule.mli: Format Grammar Preference Symbol
