lib/grammar/preference.ml: Fmt Instance Symbol
