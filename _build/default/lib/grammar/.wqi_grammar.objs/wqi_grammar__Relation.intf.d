lib/grammar/relation.mli: Instance
