lib/grammar/relation.ml: Instance Wqi_layout
