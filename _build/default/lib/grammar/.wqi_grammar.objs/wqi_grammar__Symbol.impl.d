lib/grammar/symbol.ml: Fmt Map Set String Wqi_token
