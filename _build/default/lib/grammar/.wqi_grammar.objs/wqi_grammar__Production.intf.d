lib/grammar/production.mli: Format Instance Symbol
