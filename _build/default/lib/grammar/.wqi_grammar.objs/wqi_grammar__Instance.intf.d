lib/grammar/instance.mli: Bitset Format Symbol Wqi_layout Wqi_model Wqi_token
