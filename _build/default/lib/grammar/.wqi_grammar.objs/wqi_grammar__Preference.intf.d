lib/grammar/preference.mli: Format Instance Symbol
