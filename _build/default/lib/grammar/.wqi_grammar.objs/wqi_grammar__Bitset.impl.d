lib/grammar/bitset.ml: Array Fmt Hashtbl List Printf Sys
