lib/grammar/production.ml: Fmt Instance List Symbol
