(** Fixed-universe bitsets over token ids.

    Instance coverage, conflict detection and subsumption checks are the
    innermost operations of the parser, so they are implemented over
    immutable [int array] words. *)

type t

val universe_size : t -> int

val empty : int -> t
(** [empty n] is the empty set over universe [{0, ..., n-1}]. *)

val singleton : int -> int -> t
(** [singleton n i] is [{i}] over a universe of size [n]. *)

val add : t -> int -> t
val mem : t -> int -> bool
val union : t -> t -> t
val inter : t -> t -> t
val cardinal : t -> int
val is_empty : t -> bool

val disjoint : t -> t -> bool
(** [disjoint a b] — no common element; the parser's conflict test. *)

val subset : t -> t -> bool
(** [subset a b] — every element of [a] is in [b]. *)

val strict_subset : t -> t -> bool

val equal : t -> t -> bool
val elements : t -> int list
val of_list : int -> int list -> t
val union_all : int -> t list -> t
val hash : t -> int
val pp : Format.formatter -> t -> unit
