(** Grammatical symbols of a 2P grammar (Definition 1).

    Terminals are token kinds ("text", "textbox", ...); nonterminals are
    pattern names ("Attr", "TextOp", "QI", ...).  Symbols are compared by
    name within their class. *)

type t =
  | Terminal of string
  | Nonterminal of string

val terminal : string -> t
val nonterminal : string -> t

val name : t -> string
val is_terminal : t -> bool

val of_token_kind : Wqi_token.Token.kind -> t
(** The terminal symbol a token instantiates. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
