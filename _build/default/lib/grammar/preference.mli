(** Preferences of a 2P grammar (Definition 3): ⟨Conflicting instances,
    Conflicting condition, Winning criteria⟩.

    A preference arbitrates between a [winner]-typed instance [v1] and a
    [loser]-typed instance [v2] whenever [conflict v1 v2] holds; if
    [wins v1 v2] also holds, [v2] is invalidated.  The paper's R1 ("an
    RBU beats an Attr competing for a text token") has an unconditional
    winning criterion; R2 ("the longer of two subsuming RBLists wins")
    is conditional. *)

type t = {
  name : string;
  winner : Symbol.t;   (** type of [v1] *)
  loser : Symbol.t;    (** type of [v2] *)
  conflict : Instance.t -> Instance.t -> bool;
      (** The condition U, evaluated as [conflict v1 v2].  It need not
          include cover intersection; the parser tests that first. *)
  wins : Instance.t -> Instance.t -> bool;
      (** The criterion W for picking [v1] as winner. *)
}

val make :
  name:string ->
  winner:Symbol.t ->
  loser:Symbol.t ->
  ?conflict:(Instance.t -> Instance.t -> bool) ->
  ?wins:(Instance.t -> Instance.t -> bool) ->
  unit ->
  t
(** [conflict] defaults to "covers intersect" (always true given the
    parser's pre-test); [wins] defaults to unconditional. *)

val same_symbol : t -> bool
(** Winner and loser types coincide (e.g. R2 on RBList). *)

val pp : Format.formatter -> t -> unit
