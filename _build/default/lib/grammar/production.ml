type t = {
  name : string;
  head : Symbol.t;
  components : Symbol.t list;
  guard : Instance.t array -> bool;
  build : Instance.t array -> Instance.sem;
}

let make ~name ~head ~components ?(guard = fun _ -> true)
    ?(build = fun _ -> Instance.S_none) () =
  if components = [] then invalid_arg "Production.make: empty components";
  { name; head; components; guard; build }

let is_recursive p = List.exists (Symbol.equal p.head) p.components

let pp ppf p =
  Fmt.pf ppf "%s: %a -> %a" p.name Symbol.pp p.head
    Fmt.(list ~sep:(any " ") Symbol.pp)
    p.components
