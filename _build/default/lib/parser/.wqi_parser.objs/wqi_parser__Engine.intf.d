lib/parser/engine.mli: Wqi_grammar Wqi_token
