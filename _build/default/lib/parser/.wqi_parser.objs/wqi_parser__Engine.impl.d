lib/parser/engine.ml: Array Buffer Fmt Hashtbl List Logs Option Wqi_grammar Wqi_token
