module G = Wqi_grammar
module Instance = G.Instance
module Symbol = G.Symbol
module Bitset = G.Bitset
module Token = Wqi_token.Token

let src = Logs.Src.create "wqi.parser" ~doc:"Best-effort 2P parser"

module Log = (val Logs.src_log src : Logs.LOG)

type options = {
  use_preferences : bool;
  use_scheduling : bool;
  max_instances : int;
}

let default_options =
  { use_preferences = true; use_scheduling = true; max_instances = 200_000 }

type stats = {
  created : int;
  live : int;
  pruned : int;
  rolled_back : int;
  temporary : int;
  truncated : bool;
}

type result = {
  tokens : Token.t list;
  token_instances : Instance.t list;
  all_live : Instance.t list;
  maximal : Instance.t list;
  complete : Instance.t option;
  stats : stats;
}

exception Truncated

type state = {
  grammar : G.Grammar.t;
  store : (Symbol.t, Instance.t list ref) Hashtbl.t;
  dedup : (string, unit) Hashtbl.t;
  mutable next_id : int;
  mutable created : int;
  mutable pruned : int;
  mutable rolled_back : int;
  options : options;
}

(* Live instances in creation order (oldest first): downstream
   derivations then inherit the priority that production order
   established (earlier productions yield smaller ids, and maximal-tree
   selection prefers smaller ids on ties). *)
let live_instances st sym =
  match Hashtbl.find_opt st.store sym with
  | None -> []
  | Some cell ->
    List.rev (List.filter (fun (i : Instance.t) -> i.alive) !cell)

let add_instance st inst =
  let cell =
    match Hashtbl.find_opt st.store inst.Instance.sym with
    | Some cell -> cell
    | None ->
      let cell = ref [] in
      Hashtbl.replace st.store inst.Instance.sym cell;
      cell
  in
  cell := inst :: !cell

let fresh_id st =
  let id = st.next_id in
  st.next_id <- id + 1;
  id

let dedup_key (p : G.Production.t) children =
  let b = Buffer.create 32 in
  Buffer.add_string b p.name;
  List.iter
    (fun (c : Instance.t) ->
       Buffer.add_char b '|';
       Buffer.add_string b (string_of_int c.id))
    children;
  Buffer.contents b

(* Apply one production over the current live instances.  Returns true when
   at least one new instance was created. *)
let apply_production st (p : G.Production.t) =
  let candidates =
    List.map (fun sym -> Array.of_list (live_instances st sym)) p.components
  in
  let arity = List.length p.components in
  let candidates = Array.of_list candidates in
  let chosen = Array.make arity None in
  let added = ref false in
  let rec assign i cover =
    if i = arity then begin
      let children =
        Array.to_list (Array.map (fun c -> Option.get c) chosen)
      in
      let arr = Array.of_list children in
      if p.guard arr then begin
        let key = dedup_key p children in
        if not (Hashtbl.mem st.dedup key) then begin
          Hashtbl.replace st.dedup key ();
          if st.created >= st.options.max_instances then raise Truncated;
          let sem = p.build arr in
          let inst =
            Instance.make ~id:(fresh_id st) ~sym:p.head ~prod:p.name
              ~children ~sem
          in
          st.created <- st.created + 1;
          add_instance st inst;
          Log.debug (fun m ->
              m "new %a by %s from [%a]" Instance.pp inst p.name
                Fmt.(list ~sep:comma Instance.pp)
                children);
          added := true
        end
      end
    end
    else
      Array.iter
        (fun (cand : Instance.t) ->
           if cand.alive && Bitset.disjoint cover cand.cover then begin
             chosen.(i) <- Some cand;
             assign (i + 1) (Bitset.union cover cand.cover);
             chosen.(i) <- None
           end)
        candidates.(i)
  in
  (match candidates with
   | [||] -> ()
   | _ ->
     let universe =
       (* Any instance knows the universe size; if a component has no
          candidates the production cannot fire. *)
       if Array.exists (fun c -> Array.length c = 0) candidates then None
       else Some (Bitset.universe_size candidates.(0).(0).Instance.cover)
     in
     match universe with
     | None -> ()
     | Some n -> assign 0 (Bitset.empty n));
  !added

(* Fix-point instantiation of one symbol (procedure [instantiate] of
   Figure 11). *)
let instantiate st sym =
  let productions = G.Grammar.productions_with_head st.grammar sym in
  let rec loop () =
    let progressed =
      List.fold_left (fun acc p -> apply_production st p || acc) false
        productions
    in
    if progressed then loop ()
  in
  loop ()

(* Enforce one preference over the current instances (procedure [enforce]).
   Returns unit; updates pruning counters via rollback. *)
let enforce st (r : G.Preference.t) =
  let winners () = live_instances st r.winner in
  let losers = live_instances st r.loser in
  List.iter
    (fun (v2 : Instance.t) ->
       if v2.alive then
         List.iter
           (fun (v1 : Instance.t) ->
              if v1.alive && v2.alive && v1.id <> v2.id
              && Instance.conflicts v1 v2
              && r.conflict v1 v2 && r.wins v1 v2
              && not (Instance.is_descendant v2 ~of_:v1)
              then begin
                let killed = Instance.rollback v2 in
                st.pruned <- st.pruned + 1;
                st.rolled_back <- st.rolled_back + (killed - 1);
                Log.debug (fun m ->
                    m "preference %s: %a beats %a (%d rolled back)"
                      r.G.Preference.name Instance.pp v1 Instance.pp v2
                      (killed - 1))
              end)
           (winners ()))
    losers

let preferences_involving (g : G.Grammar.t) sym =
  List.filter
    (fun (r : G.Preference.t) ->
       Symbol.equal r.winner sym || Symbol.equal r.loser sym)
    g.preferences

(* d-edge-only topological order, used when scheduling is disabled. *)
let d_only_order (g : G.Grammar.t) =
  let bare =
    G.Grammar.make ~terminals:g.terminals ~start:g.start
      ~productions:g.productions ()
  in
  (G.Schedule.build bare).G.Schedule.order

let all_live_list st =
  Hashtbl.fold
    (fun _sym cell acc ->
       List.rev_append (List.filter (fun (i : Instance.t) -> i.alive) !cell) acc)
    st.store []
  |> List.sort (fun (a : Instance.t) b -> compare a.id b.id)

let reachable_ids roots =
  let seen = Hashtbl.create 256 in
  let rec go (i : Instance.t) =
    if not (Hashtbl.mem seen i.id) then begin
      Hashtbl.replace seen i.id ();
      List.iter go i.children
    end
  in
  List.iter go roots;
  seen

let maximal_trees st =
  let tops =
    List.filter
      (fun (i : Instance.t) ->
         (not (Symbol.is_terminal i.sym))
         && not (List.exists (fun (p : Instance.t) -> p.alive) i.parents))
      (all_live_list st)
  in
  (* Maximum subsumption: drop any top whose cover is contained in the
     cover of an already-kept top.  Sorting big-to-small makes one pass
     sufficient and keeps the result deterministic. *)
  (* Between equal covers, prefer the interpretation that yields query
     conditions (e.g. an EnumRB top over a bare Op top), then the earliest
     instance for determinism. *)
  let cond_count (i : Instance.t) =
    List.length (Instance.collect_conditions i)
  in
  let sorted =
    List.sort
      (fun (a : Instance.t) (b : Instance.t) ->
         match compare (Bitset.cardinal b.cover) (Bitset.cardinal a.cover) with
         | 0 ->
           (match compare (cond_count b) (cond_count a) with
            | 0 -> compare a.id b.id
            | c -> c)
         | c -> c)
      tops
  in
  List.rev
    (List.fold_left
       (fun kept (t : Instance.t) ->
          if List.exists (fun (k : Instance.t) -> Bitset.subset t.cover k.Instance.cover) kept
          then kept
          else t :: kept)
       [] sorted)

let parse ?(options = default_options) grammar tokens =
  let st =
    { grammar;
      store = Hashtbl.create 64;
      dedup = Hashtbl.create 1024;
      next_id = 0;
      created = 0;
      pruned = 0;
      rolled_back = 0;
      options }
  in
  let universe = List.length tokens in
  let token_instances =
    List.map
      (fun tok ->
         let inst = Instance.of_token ~id:(fresh_id st) ~universe tok in
         st.created <- st.created + 1;
         add_instance st inst;
         inst)
      tokens
  in
  let schedule =
    if options.use_scheduling then G.Schedule.build grammar
    else
      { G.Schedule.order = d_only_order grammar; transformed = []; relaxed = [] }
  in
  let truncated = ref false in
  (try
     List.iter
       (fun sym ->
          Log.debug (fun m -> m "instantiating %a" Symbol.pp sym);
          instantiate st sym;
          if options.use_preferences && options.use_scheduling then
            List.iter (enforce st) (preferences_involving grammar sym))
       schedule.G.Schedule.order;
     (* Late pruning when scheduling is off; also a final sweep in the
        scheduled mode for relaxed preferences whose loser precedes its
        winner. *)
     if options.use_preferences then
       if not options.use_scheduling then
         List.iter (enforce st) grammar.preferences
       else List.iter (enforce st) schedule.G.Schedule.relaxed
   with Truncated -> truncated := true);
  let all_live = all_live_list st in
  let maximal = maximal_trees st in
  let complete =
    List.find_opt
      (fun (i : Instance.t) ->
         Symbol.equal i.sym grammar.start
         && Bitset.cardinal i.cover = universe)
      all_live
  in
  let in_maximal = reachable_ids maximal in
  let temporary = st.created - Hashtbl.length in_maximal in
  { tokens;
    token_instances;
    all_live;
    maximal;
    complete;
    stats =
      { created = st.created;
        live = List.length all_live;
        pruned = st.pruned;
        rolled_back = st.rolled_back;
        temporary;
        truncated = !truncated } }

let count_trees result =
  let universe = List.length result.tokens in
  let complete_trees =
    List.filter
      (fun (i : Instance.t) ->
         (not (Symbol.is_terminal i.sym))
         && Bitset.cardinal i.cover = universe)
      result.all_live
  in
  let start_trees =
    List.filter
      (fun (i : Instance.t) -> i.prod <> None)
      complete_trees
  in
  if start_trees <> [] then List.length start_trees
  else List.length result.maximal
