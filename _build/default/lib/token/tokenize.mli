(** Front-end of the form extractor: HTML to token set.

    Combines the HTML parser and layout engine and classifies every
    rendered atom into a terminal token.  Ids are assigned densely in
    reading order, so token id [k] corresponds to bit [k] in the parser's
    coverage bitsets. *)

val of_document : ?width:int -> Wqi_html.Dom.t -> Token.t list
(** [of_document doc] renders [doc] and classifies its atoms.  [width]
    is the page width handed to the layout engine. *)

val of_html : ?width:int -> string -> Token.t list
(** [of_html markup] is [of_document (Wqi_html.Parser.parse markup)]. *)
