type kind =
  | Text
  | Textbox
  | Selection
  | Radio
  | Checkbox
  | Button
  | Image

type t = {
  id : int;
  kind : kind;
  box : Wqi_layout.Geometry.box;
  sval : string;
  name : string;
  options : string list;
  value : string;
  checked : bool;
  multiple : bool;
}

let kind_name = function
  | Text -> "text"
  | Textbox -> "textbox"
  | Selection -> "selection"
  | Radio -> "radio"
  | Checkbox -> "checkbox"
  | Button -> "button"
  | Image -> "image"

let pp ppf t =
  Fmt.pf ppf "#%d %s %a %S" t.id (kind_name t.kind) Wqi_layout.Geometry.pp
    t.box t.sval

let is_field t =
  match t.kind with
  | Textbox | Selection | Radio | Checkbox -> true
  | Text | Button | Image -> false

let describe t =
  match t.kind with
  | Text -> Fmt.str "text %S" t.sval
  | Selection -> Fmt.str "selection list %S" t.name
  | kind ->
    if t.sval <> "" then Fmt.str "%s %S" (kind_name kind) t.sval
    else if t.name <> "" then Fmt.str "%s %S" (kind_name kind) t.name
    else kind_name kind
