(** Tokens: the terminal alphabet of the visual language.

    The tokenizer (paper Section 3.4, Figure 5) converts a rendered HTML
    form into a set of tokens, each an atomic visual element with a
    terminal type and the attributes needed for parsing — notably the
    universal [pos] bounding box. *)

type kind =
  | Text
      (** A text run (label, operator wording, decorative prose). *)
  | Textbox
      (** Free-text entry: [input type=text/password/search/file] and
          [textarea]. *)
  | Selection
      (** A [select] element; carries its option labels. *)
  | Radio
  | Checkbox
  | Button
      (** Submit/reset/push buttons, including [input type=image]. *)
  | Image
      (** An [img] element (decoration, possibly an attribute icon). *)

type t = {
  id : int;            (** Dense index in reading order. *)
  kind : kind;
  box : Wqi_layout.Geometry.box;
  sval : string;       (** Text content, button label or image alt text. *)
  name : string;       (** The form-field [name] attribute, or [""]. *)
  options : string list; (** Option labels for [Selection] tokens. *)
  value : string;      (** The HTML [value] attribute (submission value
                           of radio/checkbox tokens), or [""]. *)
  checked : bool;      (** Initial state of radio/checkbox tokens. *)
  multiple : bool;     (** [select multiple]. *)
}

val kind_name : kind -> string
(** Lowercase terminal-symbol name ("text", "textbox", "selection",
    "radio", "checkbox", "button", "image"). *)

val pp : Format.formatter -> t -> unit

val is_field : t -> bool
(** Tokens that accept user input (everything except [Text], [Button]
    and [Image]). *)

val describe : t -> string
(** One-line description used in error reports. *)
