lib/token/token.ml: Fmt Wqi_layout
