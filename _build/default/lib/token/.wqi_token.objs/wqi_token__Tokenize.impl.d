lib/token/tokenize.ml: List String Token Wqi_html Wqi_layout
