lib/token/token.mli: Format Wqi_layout
