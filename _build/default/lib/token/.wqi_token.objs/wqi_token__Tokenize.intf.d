lib/token/tokenize.mli: Token Wqi_html
