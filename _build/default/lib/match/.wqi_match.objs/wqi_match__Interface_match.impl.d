lib/match/interface_match.ml: Array Fun Hashtbl List Option String Wqi_model
