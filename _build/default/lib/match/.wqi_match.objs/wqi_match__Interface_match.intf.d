lib/match/interface_match.mli: Wqi_model
