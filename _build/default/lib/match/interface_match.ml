module Condition = Wqi_model.Condition
module Textsim = Wqi_model.Textsim

type schema = {
  source : string;
  conditions : Condition.t list;
}

let attribute_match (a : Condition.t) (b : Condition.t) =
  let base = Textsim.similarity a.attribute b.attribute in
  if Condition.same_domain_shape a.domain b.domain then base else base *. 0.8

let correspondences ?(threshold = 0.6) sa sb =
  let pairs =
    List.concat_map
      (fun a ->
         List.map (fun b -> (a, b, attribute_match a b)) sb.conditions)
      sa.conditions
    |> List.filter (fun (_, _, s) -> s >= threshold)
    |> List.sort (fun (_, _, x) (_, _, y) -> compare y x)
  in
  let used_a = Hashtbl.create 8 and used_b = Hashtbl.create 8 in
  List.filter
    (fun (a, b, _) ->
       let ka = Condition.to_string a and kb = Condition.to_string b in
       if Hashtbl.mem used_a ka || Hashtbl.mem used_b kb then false
       else begin
         Hashtbl.replace used_a ka ();
         Hashtbl.replace used_b kb ();
         true
       end)
    pairs

let schema_similarity ?threshold sa sb =
  let na = List.length sa.conditions and nb = List.length sb.conditions in
  if na = 0 && nb = 0 then 1.0
  else if na = 0 || nb = 0 then 0.0
  else begin
    let matched = correspondences ?threshold sa sb in
    let total =
      List.fold_left (fun acc (_, _, s) -> acc +. s) 0. matched
    in
    let m = List.length matched in
    total /. float_of_int (na + nb - m)
  end

let cluster ?(threshold = 0.5) schemas =
  (* Union-find over schema indices, linked by pairwise similarity. *)
  let n = List.length schemas in
  let arr = Array.of_list schemas in
  let parent = Array.init n Fun.id in
  let rec find i = if parent.(i) = i then i else find parent.(i) in
  let union i j =
    let ri = find i and rj = find j in
    if ri <> rj then parent.(max ri rj) <- min ri rj
  in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if schema_similarity arr.(i) arr.(j) >= threshold then union i j
    done
  done;
  let buckets = Hashtbl.create 8 in
  let order = ref [] in
  for i = 0 to n - 1 do
    let root = find i in
    if not (Hashtbl.mem buckets root) then begin
      Hashtbl.replace buckets root [];
      order := root :: !order
    end;
    Hashtbl.replace buckets root (arr.(i) :: Hashtbl.find buckets root)
  done;
  (* [!order] holds roots in reverse discovery order; rev_map restores
     discovery order. *)
  List.rev_map (fun root -> List.rev (Hashtbl.find buckets root)) !order

let unify ?(threshold = 0.6) schemas =
  (* All conditions tagged with their source index, then clustered by
     pairwise attribute_match using union-find. *)
  let tagged =
    List.concat
      (List.mapi
         (fun src_index s ->
            List.map (fun c -> (src_index, c)) s.conditions)
         schemas)
  in
  let arr = Array.of_list tagged in
  let n = Array.length arr in
  let parent = Array.init n Fun.id in
  let rec find i = if parent.(i) = i then i else find parent.(i) in
  let union i j =
    let ri = find i and rj = find j in
    if ri <> rj then parent.(max ri rj) <- min ri rj
  in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      (* Never merge two conditions of the same source: one interface
         never shows the same attribute twice. *)
      let si, ci = arr.(i) and sj, cj = arr.(j) in
      if si <> sj && attribute_match ci cj >= threshold then union i j
    done
  done;
  let buckets = Hashtbl.create 16 in
  let order = ref [] in
  for i = 0 to n - 1 do
    let root = find i in
    if not (Hashtbl.mem buckets root) then begin
      Hashtbl.replace buckets root [];
      order := root :: !order
    end;
    Hashtbl.replace buckets root (arr.(i) :: Hashtbl.find buckets root)
  done;
  let merge members =
    let conditions = List.map snd members in
    let support =
      List.length (List.sort_uniq compare (List.map fst members))
    in
    (* Most frequent normalized label; longest original as the face. *)
    let label_counts = Hashtbl.create 8 in
    List.iter
      (fun (c : Condition.t) ->
         let l = Condition.normalize_label c.attribute in
         Hashtbl.replace label_counts l
           (1 + Option.value ~default:0 (Hashtbl.find_opt label_counts l)))
      conditions;
    let best_label =
      Hashtbl.fold
        (fun l count best ->
           match best with
           | Some (_, bc) when bc >= count -> best
           | _ -> Some (l, count))
        label_counts None
      |> Option.map fst
      |> Option.value ~default:""
    in
    let face =
      List.fold_left
        (fun best (c : Condition.t) ->
           if Condition.normalize_label c.attribute = best_label
           && String.length c.attribute > String.length best
           then c.attribute
           else best)
        "" conditions
    in
    let operators =
      List.sort_uniq compare (List.concat_map (fun (c : Condition.t) -> c.operators) conditions)
    in
    (* Majority domain shape; enumeration values unioned. *)
    let shape_key (c : Condition.t) =
      match c.domain with
      | Condition.Text -> `Text
      | Condition.Datetime -> `Datetime
      | Condition.Range _ -> `Range
      | Condition.Enumeration _ -> `Enumeration
    in
    let shapes = List.map shape_key conditions in
    let majority =
      List.fold_left
        (fun best shape ->
           let count s = List.length (List.filter (( = ) s) shapes) in
           match best with
           | Some b when count b >= count shape -> best
           | _ -> Some shape)
        None shapes
      |> Option.get
    in
    let domain =
      match majority with
      | `Text -> Condition.Text
      | `Datetime -> Condition.Datetime
      | `Range ->
        (match
           List.find_map
             (fun (c : Condition.t) ->
                match c.domain with Condition.Range d -> Some d | _ -> None)
             conditions
         with
         | Some inner -> Condition.Range inner
         | None -> Condition.Range Condition.Text)
      | `Enumeration ->
        let values =
          List.concat_map
            (fun (c : Condition.t) ->
               match c.domain with Condition.Enumeration vs -> vs | _ -> [])
            conditions
        in
        let seen = Hashtbl.create 16 in
        Condition.Enumeration
          (List.filter
             (fun v ->
                let key = Condition.normalize_label v in
                if Hashtbl.mem seen key then false
                else begin
                  Hashtbl.replace seen key ();
                  true
                end)
             values)
    in
    (Condition.make ~operators ~attribute:face domain, support)
  in
  List.rev_map (fun root -> merge (List.rev (Hashtbl.find buckets root))) !order
  |> List.sort (fun (_, a) (_, b) -> compare b a)

let purity ~label clusters =
  let total = List.fold_left (fun acc c -> acc + List.length c) 0 clusters in
  if total = 0 then 1.0
  else begin
    let agreeing =
      List.fold_left
        (fun acc members ->
           let counts = Hashtbl.create 4 in
           List.iter
             (fun s ->
                let l = label s in
                Hashtbl.replace counts l
                  (1 + Option.value ~default:0 (Hashtbl.find_opt counts l)))
             members;
           let majority =
             Hashtbl.fold (fun _ n best -> max n best) counts 0
           in
           acc + majority)
        0 clusters
    in
    float_of_int agreeing /. float_of_int total
  end
