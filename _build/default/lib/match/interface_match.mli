(** Interface matching and clustering over extracted schemas.

    The paper motivates automatic capability extraction with integration
    tasks: matching query interfaces and clustering Web sources by their
    schemas (Section 1, citing [11, 12]).  This module implements both
    over the extractor's output, so the end-to-end story — raw HTML to
    organized source collections — closes. *)

type schema = {
  source : string;
  conditions : Wqi_model.Condition.t list;
}

val attribute_match :
  Wqi_model.Condition.t -> Wqi_model.Condition.t -> float
(** Similarity of two conditions: bigram-Dice similarity of attribute
    labels, with a 20% penalty when the domain shapes differ (an
    "Author" textbox and an "Author" enumeration are related but not
    interchangeable).  In [0, 1]. *)

val correspondences :
  ?threshold:float ->
  schema ->
  schema ->
  (Wqi_model.Condition.t * Wqi_model.Condition.t * float) list
(** Greedy one-to-one matching of conditions by descending
    {!attribute_match}, keeping pairs at or above [threshold]
    (default 0.6) — the per-pair output an interface matcher needs. *)

val schema_similarity : ?threshold:float -> schema -> schema -> float
(** Soft-Jaccard over {!correspondences}: total matched similarity
    divided by [|A| + |B| - matched].  1.0 for identical schemas, 0.0
    when nothing matches. *)

val cluster :
  ?threshold:float -> schema list -> schema list list
(** Single-linkage agglomerative clustering: two schemas land in one
    cluster when some chain of pairwise similarities ≥ [threshold]
    (default 0.5) connects them.  Order-stable. *)

val purity : label:(schema -> string) -> schema list list -> float
(** Cluster purity against external labels (e.g. the true domain of
    each synthetic source): the fraction of schemas that agree with
    their cluster's majority label. *)

val unify :
  ?threshold:float ->
  schema list ->
  (Wqi_model.Condition.t * int) list
(** Build a *unified interface* for a set of same-domain schemas (the
    last motivating application of the paper's introduction): cluster
    all conditions across sources by {!attribute_match} (single
    linkage, threshold default 0.6), then merge each cluster into one
    condition — the most frequent label, the union of operators, and
    the merged domain (enumeration values unioned; the majority shape
    wins on disagreement).  Returns conditions with their support
    (number of sources exhibiting them), most-supported first. *)
