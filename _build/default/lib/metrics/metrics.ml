module Condition = Wqi_model.Condition

type counts = {
  truth : int;
  extracted : int;
  correct : int;
}

let count ~truth ~extracted =
  let remaining = ref truth in
  let correct = ref 0 in
  List.iter
    (fun e ->
       let rec take acc = function
         | [] -> ()
         | t :: rest ->
           if Condition.matches ~truth:t e then begin
             incr correct;
             remaining := List.rev_append acc rest
           end
           else take (t :: acc) rest
       in
       take [] !remaining)
    extracted;
  { truth = List.length truth;
    extracted = List.length extracted;
    correct = !correct }

let precision c =
  if c.extracted = 0 then 1.0
  else float_of_int c.correct /. float_of_int c.extracted

let recall c =
  if c.truth = 0 then 1.0
  else float_of_int c.correct /. float_of_int c.truth

let accuracy ~precision ~recall = (precision +. recall) /. 2.0

let add a b =
  { truth = a.truth + b.truth;
    extracted = a.extracted + b.extracted;
    correct = a.correct + b.correct }

let zero = { truth = 0; extracted = 0; correct = 0 }

let distribution ~thresholds values =
  let n = List.length values in
  List.map
    (fun threshold ->
       let hits = List.length (List.filter (fun v -> v >= threshold) values) in
       let pct =
         if n = 0 then 0. else 100. *. float_of_int hits /. float_of_int n
       in
       (threshold, pct))
    thresholds

let mean = function
  | [] -> 0.
  | values ->
    List.fold_left ( +. ) 0. values /. float_of_int (List.length values)
