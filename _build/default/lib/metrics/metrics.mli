(** Precision/recall metrics of Section 6.1.

    A source's semantic model is compared against ground truth by
    matching conditions ({!Wqi_model.Condition.matches}: attribute label,
    operator set and domain shape).  Per-source and overall (aggregated)
    variants mirror the paper's two measurement modes. *)

type counts = {
  truth : int;      (** |Cs(q)| — conditions in the ground-truth model *)
  extracted : int;  (** |Es(q)| — conditions the extractor produced *)
  correct : int;    (** |Cs(q) ∩ Es(q)| — matched pairs *)
}

val count :
  truth:Wqi_model.Condition.t list ->
  extracted:Wqi_model.Condition.t list ->
  counts
(** Greedy one-to-one matching: each extracted condition may match at
    most one ground-truth condition and vice versa. *)

val precision : counts -> float
(** [correct / extracted]; defined as 1.0 when nothing was extracted
    (no false positives). *)

val recall : counts -> float
(** [correct / truth]; defined as 1.0 when the truth is empty. *)

val accuracy : precision:float -> recall:float -> float
(** The paper's headline number: the average of P and R. *)

val add : counts -> counts -> counts
(** Aggregation for the overall metric Pa/Ra. *)

val zero : counts

val distribution : thresholds:float list -> float list -> (float * float) list
(** [distribution ~thresholds values] returns, for each threshold t, the
    percentage (0–100) of values >= t — the source-distribution curves of
    Figure 15(a,b). *)

val mean : float list -> float
