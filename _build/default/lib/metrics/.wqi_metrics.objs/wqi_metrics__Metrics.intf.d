lib/metrics/metrics.mli: Wqi_model
