lib/metrics/metrics.ml: List Wqi_model
