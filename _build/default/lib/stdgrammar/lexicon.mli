(** Lexical cues used by production guards of the derived grammar.

    The paper's grammar distinguishes, e.g., an operator wording ("starts
    with") from an attribute label ("Title") and a bound marker ("from")
    from an ordinary label; these judgements are encoded here so guards
    stay declarative. *)

val is_operator_phrase : string -> bool
(** Text that reads as a query operator or modifier: "contains words",
    "start of last name", "exact match", "greater than", ... *)

val all_operator_options : string list -> bool
(** Every option of a selection list reads as an operator (and there are
    at least two) — the cue for an operator select. *)

val is_unit_word : string -> bool
(** Measurement-unit wording that trails a value box: "miles", "km",
    "nights", "sq ft", "%", ... *)

val is_bound_marker : string -> bool
(** Range-bound wording: "from", "to", "min", "max", "between", "under",
    "over", "at least", "at most", "and". *)

val is_dateish_options : string list -> bool
(** Option labels that look like a date/time component: month names,
    day-of-month numbers, plausible years, hours or minutes. *)

val date_component : string list -> [ `Month | `Day | `Year | `Time | `None ]
(** Classify a selection list's options as one date/time component. *)

val plausible_date_combo : string list list -> bool
(** Do these adjacent selection lists form a credible composite date or
    time?  Requires a month/day/year style combination (or a pair of
    time components); rejects e.g. two generic small-number lists
    (passenger counts) that would otherwise masquerade as day lists. *)

val split_unit_prefix : string -> (string * string) option
(** [split_unit_prefix "miles of ZIP"] = [Some ("miles", "ZIP")]: a text
    run that merged a trailing unit of the previous field with the label
    of the next one ("[radius select] miles of ZIP [box]").  A leading
    "of" after the unit is dropped from the label. *)

val split_bound_suffix : string -> (string * string) option
(** [split_bound_suffix "Price: from"] = [Some ("Price:", "from")]: an
    attribute label that visually merged with a trailing range-bound
    marker (browsers render "Price: from [box]" as one text run).
    Returns [None] when the text does not end with a bound marker or the
    prefix would be empty. *)

val plausible_attribute : string -> bool
(** A text run short and label-like enough to act as an attribute name
    (excludes long prose, bare punctuation and pure numbers). *)
