lib/stdgrammar/lexicon.mli:
