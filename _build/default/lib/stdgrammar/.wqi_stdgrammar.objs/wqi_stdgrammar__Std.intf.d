lib/stdgrammar/std.mli: Wqi_grammar
