lib/stdgrammar/std.ml: Array Fmt Lexicon List Wqi_grammar Wqi_layout Wqi_model Wqi_token
