lib/stdgrammar/lexicon.ml: List String
