let lowercase = String.lowercase_ascii

let contains_substring ~needle haystack =
  let n = String.length needle and h = String.length haystack in
  let rec at i =
    if i + n > h then false
    else if String.sub haystack i n = needle then true
    else at (i + 1)
  in
  n > 0 && at 0

let operator_keywords =
  [ "contain"; "start"; "begin"; "end with"; "ends with"; "exact";
    "equal"; "match"; "is exactly"; "keyword"; "phrase"; "all of";
    "any of"; "at least"; "at most"; "greater"; "less"; "more than";
    "fewer"; "before"; "after"; "between"; "similar"; "like";
    "first name"; "last name"; "initials"; "whole word"; "substring";
    "prefix"; "suffix" ]

let is_operator_phrase s =
  let s = lowercase (String.trim s) in
  s <> "" && List.exists (fun kw -> contains_substring ~needle:kw s) operator_keywords

let all_operator_options options =
  List.length options >= 2 && List.for_all is_operator_phrase options

let bound_markers =
  [ "from"; "to"; "min"; "max"; "minimum"; "maximum"; "under"; "over";
    "between"; "and"; "at least"; "at most"; "low"; "high"; "lowest";
    "highest"; "up to" ]

let strip_label_punctuation s =
  let s = String.trim (lowercase s) in
  let n = String.length s in
  let rec last i =
    if i > 0 && (s.[i - 1] = ':' || s.[i - 1] = '$' || s.[i - 1] = '.')
    then last (i - 1)
    else i
  in
  let rec first i =
    if i < n && (s.[i] = '$' || s.[i] = '(') then first (i + 1) else i
  in
  let f = first 0 and l = last n in
  if l > f then String.sub s f (l - f) else ""

let is_bound_marker s = List.mem (strip_label_punctuation s) bound_markers

let unit_words =
  [ "miles"; "mile"; "mi"; "km"; "kilometers"; "nights"; "night"; "days";
    "day"; "years"; "yrs"; "dollars"; "usd"; "%"; "percent"; "sq ft";
    "sqft"; "lbs"; "kg"; "people"; "guests"; "rooms"; "passengers" ]

let is_unit_word s = List.mem (strip_label_punctuation s) unit_words

let month_names =
  [ "january"; "february"; "march"; "april"; "may"; "june"; "july";
    "august"; "september"; "october"; "november"; "december";
    "jan"; "feb"; "mar"; "apr"; "jun"; "jul"; "aug"; "sep"; "sept";
    "oct"; "nov"; "dec" ]

let is_int s = match int_of_string_opt (String.trim s) with
  | Some _ -> true
  | None -> false

let as_int s = int_of_string_opt (String.trim s)

let is_month s =
  let s = lowercase (String.trim s) in
  List.mem s month_names
  || (match as_int s with Some m -> m >= 1 && m <= 12 | None -> false)

let is_day s =
  match as_int s with Some d -> d >= 1 && d <= 31 | None -> false

let is_year s =
  match as_int s with Some y -> y >= 1900 && y <= 2100 | None -> false

let is_hour_or_minute s =
  let s = lowercase (String.trim s) in
  match as_int s with
  | Some v -> v >= 0 && v <= 59
  | None ->
    contains_substring ~needle:"am" s || contains_substring ~needle:"pm" s
    || contains_substring ~needle:":" s

let header_placeholders = [ "mm"; "dd"; "yy"; "yyyy"; "month"; "day"; "year";
                            "hour"; "minute"; "time"; "hh"; "mi"; "--" ]

let significant_options options =
  List.filter
    (fun o -> not (List.mem (lowercase (String.trim o)) header_placeholders))
    options

let date_component options =
  let significant = significant_options options in
  match significant with
  | [] -> if options = [] then `None else `Day
  | _ ->
    let all pred = List.for_all pred significant in
    if List.length significant < 2 then `None
    else if all (fun s -> is_month s && not (is_day s)) then `Month
    else if all is_year then `Year
    else if all is_day then `Day
    else if all is_hour_or_minute then `Time
    else `None

let is_dateish_options options = date_component options <> `None

let plausible_date_combo option_lists =
  let components = List.map date_component option_lists in
  match components with
  | [ a; b; c ] ->
    (* A composite date: month, day and year in any order.  Numeric month
       lists (1..12) classify as `Day, hence the second form. *)
    let sorted = List.sort compare [ a; b; c ] in
    sorted = List.sort compare [ `Month; `Day; `Year ]
    || sorted = List.sort compare [ `Day; `Day; `Year ]
  | [ a; b ] ->
    (* Month/day, month/year, day/year pairs or an hour/minute pair; two
       generic number lists (e.g. passenger counts) do not qualify. *)
    (match List.sort compare [ a; b ] with
     | [ `Day; `Month ] | [ `Month; `Year ] | [ `Day; `Year ]
     | [ `Time; `Time ] ->
       true
     | _ -> false)
  | _ -> false

let split_unit_prefix s =
  let s = String.trim s in
  match String.index_opt s ' ' with
  | None -> None
  | Some i ->
    let first = String.sub s 0 i in
    let rest = String.trim (String.sub s i (String.length s - i)) in
    if not (is_unit_word first) || rest = "" then None
    else begin
      let label =
        if String.length rest > 3 && String.lowercase_ascii (String.sub rest 0 3) = "of "
        then String.trim (String.sub rest 3 (String.length rest - 3))
        else rest
      in
      if label = "" then None else Some (first, label)
    end

let split_bound_suffix s =
  let s = String.trim s in
  match String.rindex_opt s ' ' with
  | None -> None
  | Some i ->
    let prefix = String.trim (String.sub s 0 i) in
    let suffix = String.sub s (i + 1) (String.length s - i - 1) in
    if prefix <> "" && is_bound_marker suffix
       && not (is_bound_marker prefix)
    then Some (prefix, suffix)
    else None

let word_count s =
  String.split_on_char ' ' (String.trim s)
  |> List.filter (fun w -> w <> "")
  |> List.length

let plausible_attribute s =
  let s = String.trim s in
  let n = String.length s in
  n > 0 && n <= 60
  && word_count s <= 6
  && (not (is_int s))
  && String.exists
       (fun c -> (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z'))
       s
  && not (n > 1 && s.[n - 1] = '!')
