(** Serialization of DOM trees back to HTML markup.

    Used by the synthetic corpus generator (which builds forms as DOM trees
    and must emit real HTML for the extractor to consume) and by round-trip
    tests of the parser. *)

val to_string : Dom.t -> string
(** [to_string node] serializes the subtree rooted at [node].  Text is
    entity-escaped, attribute values are double-quoted and escaped, and
    void elements are emitted without close tags. *)

val fragment_to_string : Dom.t list -> string
(** [fragment_to_string nodes] serializes a node list by concatenation. *)
