(** Decoding of HTML character references (entities).

    Supports the named entities that occur in practice on query forms plus
    decimal ([&#160;]) and hexadecimal ([&#xA0;]) numeric references.  Unknown
    references are left verbatim, which matches the tolerant behaviour of
    browsers on malformed markup. *)

val lookup_named : string -> string option
(** [lookup_named name] returns the UTF-8 expansion of the named entity
    [name] (without the surrounding [&] and [;]), or [None] if unknown. *)

val decode : string -> string
(** [decode s] replaces every character reference in [s] by its expansion.
    Decoding is single-pass: expansions are not re-scanned, so
    ["&amp;amp;"] decodes to ["&amp;"]. *)

val encode_text : string -> string
(** [encode_text s] escapes [&], [<] and [>] for safe inclusion as HTML
    text content. *)

val encode_attribute : string -> string
(** [encode_attribute s] escapes ampersand, angle brackets and the double
    quote for safe inclusion
    inside a double-quoted HTML attribute value. *)
