(** Tolerant HTML tree construction.

    Implements the subset of the HTML5 tree-building rules that matters for
    query forms: void elements, implicit closing of [li], [option], [p],
    table cells and rows, recovery from mismatched close tags, and an
    always-present [html]/[body] skeleton.  Parsing never fails. *)

val is_void : string -> bool
(** [is_void name] is true for void elements ([br], [img], [input], ...)
    which never carry children or close tags. *)

val parse : string -> Dom.t
(** [parse html] parses the markup and returns the document root, an
    [Element ("html", ...)] node containing a [body].  Markup found
    outside [body] (for instance a bare [<form>] fragment) is placed
    inside the synthesized [body]. *)

val parse_fragment : string -> Dom.t list
(** [parse_fragment html] parses the markup and returns the children of
    the resulting body, convenient for fragment round-trips in tests. *)
