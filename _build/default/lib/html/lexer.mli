(** Tolerant lexer for HTML markup.

    Splits raw HTML into a flat stream of tags, text runs, comments, and
    doctype declarations.  The lexer never fails: malformed constructs are
    recovered from the way browsers recover (a lone [<] becomes text, an
    unterminated tag extends to end of input, and so on). *)

type token =
  | Text of string
      (** A text run, with character references decoded. *)
  | Open of string * (string * string) list * bool
      (** [Open (name, attributes, self_closing)].  The tag name is
          lowercased; attribute names are lowercased and values have their
          character references decoded.  A valueless attribute (e.g.
          [checked]) carries [""] as value. *)
  | Close of string
      (** A closing tag; the name is lowercased. *)
  | Comment of string
      (** Contents of an HTML comment, verbatim. *)
  | Doctype of string
      (** Contents of a [<!DOCTYPE ...>] declaration, verbatim. *)

val tokenize : string -> token list
(** [tokenize html] lexes the whole input.  The content of raw-text
    elements ([script], [style], [textarea], [title]) is returned as a
    single [Text] token that extends to the matching close tag; [script]
    and [style] keep their content verbatim while [textarea] and [title]
    get entity decoding. *)

val pp_token : Format.formatter -> token -> unit
(** Pretty-printer for debugging. *)
