type token =
  | Text of string
  | Open of string * (string * string) list * bool
  | Close of string
  | Comment of string
  | Doctype of string

let pp_token ppf = function
  | Text s -> Fmt.pf ppf "Text %S" s
  | Open (name, attrs, self) ->
    Fmt.pf ppf "Open(%s%a%s)" name
      Fmt.(list ~sep:nop (fun ppf (k, v) -> pf ppf " %s=%S" k v))
      attrs
      (if self then " /" else "")
  | Close name -> Fmt.pf ppf "Close(%s)" name
  | Comment s -> Fmt.pf ppf "Comment %S" s
  | Doctype s -> Fmt.pf ppf "Doctype %S" s

let is_space c = c = ' ' || c = '\t' || c = '\n' || c = '\r' || c = '\012'

let is_name_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')

let is_name_char c =
  is_name_start c || (c >= '0' && c <= '9') || c = '-' || c = '_' || c = ':'

(* Raw-text elements whose content must not be parsed as markup. *)
let raw_text_mode name =
  match name with
  | "script" | "style" -> Some `Verbatim
  | "textarea" | "title" -> Some `Decoded
  | _ -> None

type state = {
  src : string;
  len : int;
  mutable pos : int;
  mutable out : token list; (* reversed *)
}

let peek st off =
  let i = st.pos + off in
  if i < st.len then Some st.src.[i] else None

let emit st tok = st.out <- tok :: st.out

let emit_text st s = if s <> "" then emit st (Text (Entity.decode s))

(* Find the next occurrence of [sub] (ASCII case-insensitive) at or after
   [from]; returns the index or [len] when absent. *)
let find_ci st sub from =
  let sub = String.lowercase_ascii sub in
  let m = String.length sub in
  let rec matches_at i j =
    j >= m
    || (Char.lowercase_ascii st.src.[i + j] = sub.[j] && matches_at i (j + 1))
  in
  let rec go i =
    if i + m > st.len then st.len
    else if matches_at i 0 then i
    else go (i + 1)
  in
  go from

let read_while st pred =
  let start = st.pos in
  while st.pos < st.len && pred st.src.[st.pos] do
    st.pos <- st.pos + 1
  done;
  String.sub st.src start (st.pos - start)

let skip_spaces st = ignore (read_while st is_space)

(* Read an attribute value after '='.  Quoted or unquoted. *)
let read_attr_value st =
  skip_spaces st;
  match peek st 0 with
  | Some ('"' as q) | Some ('\'' as q) ->
    st.pos <- st.pos + 1;
    let v = read_while st (fun c -> c <> q) in
    if st.pos < st.len then st.pos <- st.pos + 1;
    Entity.decode v
  | _ ->
    Entity.decode (read_while st (fun c -> not (is_space c) && c <> '>'))

(* Read attributes up to (but not consuming) '>' or end of input.  Returns
   the attribute list and whether the tag ends in '/'. *)
let read_attributes st =
  let attrs = ref [] in
  let self_closing = ref false in
  let continue = ref true in
  while !continue do
    skip_spaces st;
    match peek st 0 with
    | None | Some '>' -> continue := false
    | Some '/' ->
      st.pos <- st.pos + 1;
      (match peek st 0 with
       | Some '>' -> self_closing := true
       | _ -> ())
    | Some c when is_name_start c ->
      let name =
        String.lowercase_ascii (read_while st is_name_char)
      in
      skip_spaces st;
      let value =
        if peek st 0 = Some '=' then begin
          st.pos <- st.pos + 1;
          read_attr_value st
        end else ""
      in
      attrs := (name, value) :: !attrs
    | Some _ ->
      (* Stray character in a tag: skip it, as browsers do. *)
      st.pos <- st.pos + 1
  done;
  (List.rev !attrs, !self_closing)

let read_comment st =
  (* st.pos is just past "<!--". *)
  let close = find_ci st "-->" st.pos in
  let body = String.sub st.src st.pos (close - st.pos) in
  st.pos <- min st.len (close + 3);
  emit st (Comment body)

let read_doctype_or_bogus st =
  (* st.pos is just past "<!". *)
  let close =
    match String.index_from_opt st.src st.pos '>' with
    | Some i -> i
    | None -> st.len
  in
  let body = String.sub st.src st.pos (close - st.pos) in
  st.pos <- min st.len (close + 1);
  if String.length body >= 7
  && String.lowercase_ascii (String.sub body 0 7) = "doctype"
  then emit st (Doctype (String.trim body))
  else emit st (Comment body)

(* Consume the raw content of a raw-text element and its close tag. *)
let read_raw_text st name mode =
  let close_tag = "</" ^ name in
  let close = find_ci st close_tag st.pos in
  let body = String.sub st.src st.pos (close - st.pos) in
  (match mode with
   | `Verbatim -> if body <> "" then emit st (Text body)
   | `Decoded -> emit_text st body);
  if close < st.len then begin
    st.pos <- close;
    (* Consume "</name ... >". *)
    st.pos <- st.pos + String.length close_tag;
    let gt =
      match String.index_from_opt st.src st.pos '>' with
      | Some i -> i + 1
      | None -> st.len
    in
    st.pos <- gt;
    emit st (Close name)
  end else st.pos <- st.len

let read_open_tag st =
  (* st.pos is at the first character of the tag name. *)
  let name = String.lowercase_ascii (read_while st is_name_char) in
  let attrs, self_closing = read_attributes st in
  if st.pos < st.len then st.pos <- st.pos + 1; (* consume '>' *)
  emit st (Open (name, attrs, self_closing));
  if not self_closing then
    match raw_text_mode name with
    | Some mode -> read_raw_text st name mode
    | None -> ()

let read_close_tag st =
  (* st.pos is just past "</". *)
  match peek st 0 with
  | Some c when is_name_start c ->
    let name = String.lowercase_ascii (read_while st is_name_char) in
    (* Skip any junk up to '>'. *)
    let gt =
      match String.index_from_opt st.src st.pos '>' with
      | Some i -> i + 1
      | None -> st.len
    in
    st.pos <- gt;
    emit st (Close name)
  | _ ->
    (* "</" followed by a non-name: browsers treat "</>" as nothing and
       "</ ..." as a bogus comment; we drop up to '>'. *)
    let gt =
      match String.index_from_opt st.src st.pos '>' with
      | Some i -> i + 1
      | None -> st.len
    in
    st.pos <- gt

let tokenize src =
  let st = { src; len = String.length src; pos = 0; out = [] } in
  let text_start = ref 0 in
  let flush_text upto =
    if upto > !text_start then
      emit_text st (String.sub st.src !text_start (upto - !text_start))
  in
  while st.pos < st.len do
    if st.src.[st.pos] = '<' then begin
      let tag_kind =
        match peek st 1 with
        | Some c when is_name_start c -> `Open
        | Some '/' -> `Close
        | Some '!' ->
          if peek st 2 = Some '-' && peek st 3 = Some '-' then `Comment
          else `Declaration
        | Some '?' -> `Processing
        | _ -> `NotATag
      in
      match tag_kind with
      | `NotATag -> st.pos <- st.pos + 1
      | kind ->
        flush_text st.pos;
        (match kind with
         | `Open ->
           st.pos <- st.pos + 1;
           read_open_tag st
         | `Close ->
           st.pos <- st.pos + 2;
           read_close_tag st
         | `Comment ->
           st.pos <- st.pos + 4;
           read_comment st
         | `Declaration ->
           st.pos <- st.pos + 2;
           read_doctype_or_bogus st
         | `Processing ->
           let gt =
             match String.index_from_opt st.src st.pos '>' with
             | Some i -> i + 1
             | None -> st.len
           in
           st.pos <- gt
         | `NotATag -> assert false);
        text_start := st.pos
    end else st.pos <- st.pos + 1
  done;
  flush_text st.len;
  List.rev st.out
