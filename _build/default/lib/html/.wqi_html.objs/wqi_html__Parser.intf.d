lib/html/parser.mli: Dom
