lib/html/dom.ml: Buffer Fmt List
