lib/html/lexer.mli: Format
