lib/html/parser.ml: Dom Lexer List
