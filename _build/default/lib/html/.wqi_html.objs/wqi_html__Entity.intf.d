lib/html/entity.mli:
