lib/html/lexer.ml: Char Entity Fmt List String
