lib/html/printer.ml: Buffer Dom Entity List Parser
