lib/html/entity.ml: Buffer Char Hashtbl List String
