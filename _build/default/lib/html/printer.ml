let add_attrs b attrs =
  List.iter
    (fun (k, v) ->
       Buffer.add_char b ' ';
       Buffer.add_string b k;
       if v <> "" then begin
         Buffer.add_string b "=\"";
         Buffer.add_string b (Entity.encode_attribute v);
         Buffer.add_char b '"'
       end)
    attrs

let rec add_node b = function
  | Dom.Text s -> Buffer.add_string b (Entity.encode_text s)
  | Dom.Comment c ->
    Buffer.add_string b "<!--";
    Buffer.add_string b c;
    Buffer.add_string b "-->"
  | Dom.Element (name, attrs, children) ->
    Buffer.add_char b '<';
    Buffer.add_string b name;
    add_attrs b attrs;
    Buffer.add_char b '>';
    if not (Parser.is_void name) then begin
      List.iter (add_node b) children;
      Buffer.add_string b "</";
      Buffer.add_string b name;
      Buffer.add_char b '>'
    end

let to_string node =
  let b = Buffer.create 256 in
  add_node b node;
  Buffer.contents b

let fragment_to_string nodes =
  let b = Buffer.create 256 in
  List.iter (add_node b) nodes;
  Buffer.contents b
