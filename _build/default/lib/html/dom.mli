(** Document object model for parsed HTML.

    A deliberately small, immutable tree: elements with lowercased names and
    decoded attributes, text nodes, and comments.  All navigation needed by
    the layout engine and tokenizer is provided here. *)

type t =
  | Element of string * (string * string) list * t list
      (** [Element (name, attributes, children)] *)
  | Text of string
  | Comment of string

val element : ?attrs:(string * string) list -> string -> t list -> t
(** [element name children] builds an element node. *)

val text : string -> t
(** [text s] builds a text node. *)

val name : t -> string
(** [name node] is the element name, or [""] for text and comments. *)

val attr : string -> t -> string option
(** [attr key node] looks up an attribute on an element node. *)

val attr_default : string -> default:string -> t -> string
(** [attr_default key ~default node] is [attr key node] with a fallback. *)

val has_attr : string -> t -> bool
(** [has_attr key node] tests attribute presence (valueless attributes such
    as [checked] count as present). *)

val children : t -> t list
(** [children node] is the child list ([[]] for text and comments). *)

val is_element : ?named:string -> t -> bool
(** [is_element node] tests for an element node; [?named] additionally
    constrains the element name. *)

val text_content : t -> string
(** [text_content node] concatenates all descendant text. *)

val find_all : (t -> bool) -> t -> t list
(** [find_all pred node] returns all descendants (including [node]
    itself) satisfying [pred], in document order. *)

val find_first : (t -> bool) -> t -> t option
(** [find_first pred node] is the first node of [find_all pred node]. *)

val fold : ('a -> t -> 'a) -> 'a -> t -> 'a
(** [fold f acc node] folds [f] over the tree in document order. *)

val pp : Format.formatter -> t -> unit
(** Structural pretty-printer (indented), for debugging and tests. *)
