let named_entities =
  [ ("amp", "&"); ("lt", "<"); ("gt", ">"); ("quot", "\""); ("apos", "'");
    ("nbsp", "\xc2\xa0"); ("copy", "\xc2\xa9"); ("reg", "\xc2\xae");
    ("trade", "\xe2\x84\xa2"); ("deg", "\xc2\xb0"); ("middot", "\xc2\xb7");
    ("bull", "\xe2\x80\xa2"); ("hellip", "\xe2\x80\xa6");
    ("mdash", "\xe2\x80\x94"); ("ndash", "\xe2\x80\x93");
    ("lsquo", "\xe2\x80\x98"); ("rsquo", "\xe2\x80\x99");
    ("ldquo", "\xe2\x80\x9c"); ("rdquo", "\xe2\x80\x9d");
    ("laquo", "\xc2\xab"); ("raquo", "\xc2\xbb");
    ("cent", "\xc2\xa2"); ("pound", "\xc2\xa3"); ("yen", "\xc2\xa5");
    ("euro", "\xe2\x82\xac"); ("sect", "\xc2\xa7"); ("para", "\xc2\xb6");
    ("plusmn", "\xc2\xb1"); ("times", "\xc3\x97"); ("divide", "\xc3\xb7");
    ("frac12", "\xc2\xbd"); ("frac14", "\xc2\xbc"); ("frac34", "\xc2\xbe");
    ("iexcl", "\xc2\xa1"); ("iquest", "\xc2\xbf"); ("szlig", "\xc3\x9f");
    ("agrave", "\xc3\xa0"); ("aacute", "\xc3\xa1"); ("acirc", "\xc3\xa2");
    ("atilde", "\xc3\xa3"); ("auml", "\xc3\xa4"); ("aring", "\xc3\xa5");
    ("aelig", "\xc3\xa6"); ("ccedil", "\xc3\xa7"); ("egrave", "\xc3\xa8");
    ("eacute", "\xc3\xa9"); ("ecirc", "\xc3\xaa"); ("euml", "\xc3\xab");
    ("igrave", "\xc3\xac"); ("iacute", "\xc3\xad"); ("icirc", "\xc3\xae");
    ("iuml", "\xc3\xaf"); ("ntilde", "\xc3\xb1"); ("ograve", "\xc3\xb2");
    ("oacute", "\xc3\xb3"); ("ocirc", "\xc3\xb4"); ("otilde", "\xc3\xb5");
    ("ouml", "\xc3\xb6"); ("oslash", "\xc3\xb8"); ("ugrave", "\xc3\xb9");
    ("uacute", "\xc3\xba"); ("ucirc", "\xc3\xbb"); ("uuml", "\xc3\xbc") ]

let named_table : (string, string) Hashtbl.t =
  let t = Hashtbl.create 97 in
  List.iter (fun (k, v) -> Hashtbl.replace t k v) named_entities;
  t

let lookup_named name = Hashtbl.find_opt named_table name

(* Encode a Unicode scalar value as UTF-8, substituting U+FFFD for invalid
   code points, as browsers do for numeric references. *)
let utf8_of_code_point cp =
  let cp = if cp < 0 || cp > 0x10FFFF || (cp >= 0xD800 && cp <= 0xDFFF)
    then 0xFFFD else cp in
  let b = Buffer.create 4 in
  if cp < 0x80 then Buffer.add_char b (Char.chr cp)
  else if cp < 0x800 then begin
    Buffer.add_char b (Char.chr (0xC0 lor (cp lsr 6)));
    Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
  end else if cp < 0x10000 then begin
    Buffer.add_char b (Char.chr (0xE0 lor (cp lsr 12)));
    Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
  end else begin
    Buffer.add_char b (Char.chr (0xF0 lor (cp lsr 18)));
    Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
    Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
  end;
  Buffer.contents b

let is_alnum c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')

let is_digit c = c >= '0' && c <= '9'

let is_hex_digit c =
  is_digit c || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')

(* Parse one reference starting at [i] (s.[i] = '&').  Returns
   [Some (expansion, next_index)] or [None] when the text after '&' does not
   form a reference. *)
let parse_reference s i =
  let n = String.length s in
  if i + 1 >= n then None
  else if s.[i + 1] = '#' then begin
    let hex = i + 2 < n && (s.[i + 2] = 'x' || s.[i + 2] = 'X') in
    let start = if hex then i + 3 else i + 2 in
    let valid = if hex then is_hex_digit else is_digit in
    let j = ref start in
    while !j < n && valid s.[!j] do incr j done;
    if !j = start then None
    else
      let digits = String.sub s start (!j - start) in
      let cp =
        try int_of_string ((if hex then "0x" else "") ^ digits)
        with Failure _ -> 0xFFFD
      in
      let next = if !j < n && s.[!j] = ';' then !j + 1 else !j in
      Some (utf8_of_code_point cp, next)
  end else begin
    let j = ref (i + 1) in
    while !j < n && is_alnum s.[!j] do incr j done;
    if !j = i + 1 then None
    else
      let name = String.sub s (i + 1) (!j - (i + 1)) in
      let lookup n =
        match lookup_named n with
        | Some _ as r -> r
        (* Browsers also try the lowercase form of legacy references. *)
        | None -> lookup_named (String.lowercase_ascii n)
      in
      match lookup name with
      | Some expansion ->
        let next = if !j < n && s.[!j] = ';' then !j + 1 else !j in
        Some (expansion, next)
      | None ->
        (* Without a semicolon, browsers match the longest known prefix
           ("&ltb" decodes as "<b"). *)
        let rec prefix k =
          if k < 2 then None
          else
            match lookup (String.sub name 0 k) with
            | Some expansion -> Some (expansion, i + 1 + k)
            | None -> prefix (k - 1)
        in
        prefix (String.length name - 1)
  end

let decode s =
  if not (String.contains s '&') then s
  else begin
    let n = String.length s in
    let b = Buffer.create n in
    let i = ref 0 in
    while !i < n do
      if s.[!i] = '&' then
        match parse_reference s !i with
        | Some (expansion, next) ->
          Buffer.add_string b expansion;
          i := next
        | None ->
          Buffer.add_char b '&';
          incr i
      else begin
        Buffer.add_char b s.[!i];
        incr i
      end
    done;
    Buffer.contents b
  end

let encode_with escapes s =
  let needs_escape c = List.mem_assoc c escapes in
  if String.exists needs_escape s then begin
    let b = Buffer.create (String.length s + 8) in
    String.iter
      (fun c ->
         match List.assoc_opt c escapes with
         | Some e -> Buffer.add_string b e
         | None -> Buffer.add_char b c)
      s;
    Buffer.contents b
  end else s

let encode_text =
  encode_with [ ('&', "&amp;"); ('<', "&lt;"); ('>', "&gt;") ]

let encode_attribute =
  encode_with
    [ ('&', "&amp;"); ('<', "&lt;"); ('>', "&gt;"); ('"', "&quot;") ]
