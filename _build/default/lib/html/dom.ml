type t =
  | Element of string * (string * string) list * t list
  | Text of string
  | Comment of string

let element ?(attrs = []) name children = Element (name, attrs, children)

let text s = Text s

let name = function
  | Element (n, _, _) -> n
  | Text _ | Comment _ -> ""

let attr key = function
  | Element (_, attrs, _) -> List.assoc_opt key attrs
  | Text _ | Comment _ -> None

let attr_default key ~default node =
  match attr key node with Some v -> v | None -> default

let has_attr key node = attr key node <> None

let children = function
  | Element (_, _, cs) -> cs
  | Text _ | Comment _ -> []

let is_element ?named node =
  match node, named with
  | Element _, None -> true
  | Element (n, _, _), Some wanted -> n = wanted
  | (Text _ | Comment _), _ -> false

let text_content node =
  let b = Buffer.create 64 in
  let rec go = function
    | Text s -> Buffer.add_string b s
    | Comment _ -> ()
    | Element (_, _, cs) -> List.iter go cs
  in
  go node;
  Buffer.contents b

let fold f acc node =
  let rec go acc node =
    let acc = f acc node in
    List.fold_left go acc (children node)
  in
  go acc node

let find_all pred node =
  List.rev
    (fold (fun acc n -> if pred n then n :: acc else acc) [] node)

let find_first pred node =
  let exception Found of t in
  try
    fold (fun () n -> if pred n then raise (Found n)) () node;
    None
  with Found n -> Some n

let rec pp ppf = function
  | Text s -> Fmt.pf ppf "%S" s
  | Comment s -> Fmt.pf ppf "<!--%s-->" s
  | Element (n, attrs, cs) ->
    Fmt.pf ppf "@[<v 2>(%s%a%a)@]" n
      Fmt.(list ~sep:nop (fun ppf (k, v) -> pf ppf " %s=%S" k v))
      attrs
      Fmt.(list ~sep:nop (fun ppf c -> pf ppf "@,%a" pp c))
      cs
