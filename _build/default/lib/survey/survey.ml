module Pattern = Wqi_corpus.Pattern
module Generator = Wqi_corpus.Generator

type occurrence = {
  source_index : int;
  source_id : string;
  domain : string;
  patterns : Pattern.id list;
}

let occurrences sources =
  List.mapi
    (fun i (s : Generator.source) ->
       { source_index = i + 1;
         source_id = s.id;
         domain = s.domain;
         patterns = List.sort_uniq compare s.patterns })
    sources

let growth_curve occs =
  let seen = Hashtbl.create 32 in
  List.map
    (fun occ ->
       List.iter (fun p -> Hashtbl.replace seen p ()) occ.patterns;
       (occ.source_index, Hashtbl.length seen))
    occs

let frequency_by_rank occs =
  let totals : (Pattern.id, int) Hashtbl.t = Hashtbl.create 32 in
  let by_domain : (Pattern.id * string, int) Hashtbl.t = Hashtbl.create 64 in
  let domains = ref [] in
  List.iter
    (fun occ ->
       if not (List.mem occ.domain !domains) then
         domains := occ.domain :: !domains;
       List.iter
         (fun p ->
            Hashtbl.replace totals p
              (1 + Option.value ~default:0 (Hashtbl.find_opt totals p));
            let key = (p, occ.domain) in
            Hashtbl.replace by_domain key
              (1 + Option.value ~default:0 (Hashtbl.find_opt by_domain key)))
         occ.patterns)
    occs;
  let domains = List.rev !domains in
  Hashtbl.fold (fun p total acc -> (p, total) :: acc) totals []
  |> List.sort (fun (pa, a) (pb, b) ->
      match compare b a with 0 -> compare pa pb | c -> c)
  |> List.map (fun (p, total) ->
      let breakdown =
        List.map
          (fun d ->
             (d, Option.value ~default:0 (Hashtbl.find_opt by_domain (p, d))))
          domains
      in
      (p, total, breakdown))

let domain_first_new_pattern occs =
  let seen = Hashtbl.create 32 in
  let new_by_domain = Hashtbl.create 8 in
  let domain_order = ref [] in
  List.iter
    (fun occ ->
       if not (List.mem occ.domain !domain_order) then
         domain_order := occ.domain :: !domain_order;
       List.iter
         (fun p ->
            if not (Hashtbl.mem seen p) then begin
              Hashtbl.replace seen p ();
              Hashtbl.replace new_by_domain occ.domain
                (1
                 + Option.value ~default:0
                     (Hashtbl.find_opt new_by_domain occ.domain))
            end)
         occ.patterns)
    occs;
  List.rev_map
    (fun d ->
       (d, Option.value ~default:0 (Hashtbl.find_opt new_by_domain d)))
    !domain_order
