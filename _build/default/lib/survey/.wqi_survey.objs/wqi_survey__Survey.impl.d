lib/survey/survey.ml: Hashtbl List Option Wqi_corpus
