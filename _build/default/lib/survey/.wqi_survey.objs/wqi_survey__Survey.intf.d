lib/survey/survey.mli: Wqi_corpus
