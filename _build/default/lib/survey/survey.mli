(** The motivating survey (paper Section 3.1, Figure 4): condition
    patterns as the building-block vocabulary of query interfaces. *)

type occurrence = {
  source_index : int;   (** x-axis position, in dataset order *)
  source_id : string;
  domain : string;
  patterns : Wqi_corpus.Pattern.id list;  (** distinct patterns used *)
}

val occurrences : Wqi_corpus.Generator.source list -> occurrence list

val growth_curve : occurrence list -> (int * int) list
(** Figure 4(a): after each source (1-based index), the cumulative number
    of distinct patterns observed.  The curve's flattening is the paper's
    "concerted structure" evidence. *)

val frequency_by_rank :
  occurrence list ->
  (Wqi_corpus.Pattern.id * int * (string * int) list) list
(** Figure 4(b): patterns with total occurrence counts, sorted most
    frequent first, each with its per-domain breakdown. *)

val domain_first_new_pattern : occurrence list -> (string * int) list
(** For each domain (in order of first appearance), how many patterns it
    introduced that earlier domains had not used — evidence that the
    vocabulary is generic rather than domain-specific. *)
