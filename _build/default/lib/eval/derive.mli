(** Grammar derivation from an observed source sample.

    The paper's grammar is *derived*: its authors observed the 150
    Basic-dataset interfaces, summarized the recurring condition
    patterns, and wrote productions for them (Section 6; Section 7
    discusses automating this and selecting training sources).  This
    module mechanizes the derivation step: given the condition patterns
    observed in a sample of sources, assemble the sub-grammar of the
    global grammar that covers exactly those patterns (plus the always-
    needed atoms and QI/HQI/CP assembly), with preferences restricted to
    the surviving symbols.

    The resulting experiment — extraction accuracy as a function of how
    many survey sources the grammar was derived from — reproduces the
    convergence story of Figure 4(a) at the *accuracy* level: a few
    dozen sources suffice. *)

val productions_for : Wqi_corpus.Pattern.id -> string list
(** Names of the global-grammar productions that recognizing the given
    condition pattern requires (transitive prerequisites included);
    [[]] for out-of-grammar patterns. *)

val grammar_for_patterns : Wqi_corpus.Pattern.id list -> Wqi_grammar.Grammar.t
(** The derived sub-grammar covering the given observed patterns.  It
    always contains the atom and assembly productions, keeps only the
    preferences whose symbols survive, and passes
    [Wqi_grammar.Grammar.validate]. *)

val grammar_from_sources :
  Wqi_corpus.Generator.source list -> Wqi_grammar.Grammar.t
(** Derive from the patterns observed across the given sources. *)
