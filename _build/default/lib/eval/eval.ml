module Metrics = Wqi_metrics.Metrics
module Generator = Wqi_corpus.Generator

type source_result = {
  source : Generator.source;
  extracted : Wqi_model.Condition.t list;
  counts : Metrics.counts;
  precision : float;
  recall : float;
  seconds : float;
}

type report = {
  dataset : string;
  results : source_result list;
  avg_precision : float;
  avg_recall : float;
  overall : Metrics.counts;
  overall_precision : float;
  overall_recall : float;
}

let parser_extract html = Wqi_core.Extractor.conditions (Wqi_core.Extractor.extract html)

let run ?(extract = parser_extract) (dataset : Wqi_corpus.Dataset.t) =
  let results =
    List.map
      (fun (s : Generator.source) ->
         let t0 = Unix.gettimeofday () in
         let extracted = extract s.html in
         let seconds = Unix.gettimeofday () -. t0 in
         let counts = Metrics.count ~truth:s.truth ~extracted in
         { source = s;
           extracted;
           counts;
           precision = Metrics.precision counts;
           recall = Metrics.recall counts;
           seconds })
      dataset.sources
  in
  let overall =
    List.fold_left (fun acc r -> Metrics.add acc r.counts) Metrics.zero results
  in
  { dataset = dataset.name;
    results;
    avg_precision = Metrics.mean (List.map (fun r -> r.precision) results);
    avg_recall = Metrics.mean (List.map (fun r -> r.recall) results);
    overall;
    overall_precision = Metrics.precision overall;
    overall_recall = Metrics.recall overall }

let thresholds = [ 1.0; 0.9; 0.8; 0.7; 0.6; 0.0 ]

let precision_distribution report =
  Metrics.distribution ~thresholds
    (List.map (fun r -> r.precision) report.results)

let recall_distribution report =
  Metrics.distribution ~thresholds (List.map (fun r -> r.recall) report.results)

let pp_report ppf r =
  Fmt.pf ppf
    "%-10s sources=%3d  avg P=%.3f R=%.3f | overall P=%.3f R=%.3f (acc %.3f)"
    r.dataset
    (List.length r.results)
    r.avg_precision r.avg_recall r.overall_precision r.overall_recall
    (Metrics.accuracy ~precision:r.overall_precision ~recall:r.overall_recall)
