module G = Wqi_grammar
module Pattern = Wqi_corpus.Pattern

(* Productions every derived grammar needs: atoms and QI/HQI/CP
   assembly. *)
let base_productions =
  [ "P-Attr"; "P-Val"; "P-SelVal"; "P-Action"; "P-Decor"; "P-HQI-base";
    "P-HQI-left"; "P-QI-base"; "P-QI-above" ]

let radio_list = [ "P-RBU"; "P-RBList-base"; "P-RBList-h"; "P-RBList-v" ]
let checkbox_list = [ "P-CBU"; "P-CBList-base"; "P-CBList-h"; "P-CBList-v" ]

let productions_for = function
  | Pattern.Attr_left_text -> [ "P-TextVal-left" ]
  | Pattern.Attr_above_text -> [ "P-TextVal-above" ]
  | Pattern.Attr_below_text -> [ "P-TextVal-below" ]
  | Pattern.Attr_text_unit -> [ "P-UnitWord"; "P-TextVal-unit" ]
  | Pattern.Textarea_keyword -> [ "P-TextVal-above" ]
  | Pattern.Attr_left_select -> [ "P-SelectCP-left" ]
  | Pattern.Attr_above_select | Pattern.Multi_select ->
    [ "P-SelectCP-above" ]
  | Pattern.Enum_radio_h -> radio_list @ [ "P-EnumRB-left" ]
  | Pattern.Enum_radio_v -> radio_list @ [ "P-EnumRB-left"; "P-EnumRB-above" ]
  | Pattern.Enum_radio_bare -> radio_list @ [ "P-EnumRB-bare" ]
  | Pattern.Enum_checkbox_h ->
    checkbox_list @ [ "P-CheckCP-left"; "P-CheckCP-above"; "P-CheckCP-bare" ]
  | Pattern.Solo_checkbox -> [ "P-CBU"; "P-CBSolo" ]
  | Pattern.Text_op_radio_below ->
    radio_list @ [ "P-Op-RB"; "P-TextOp-below"; "P-TextOp-attrabove" ]
  | Pattern.Text_op_radio_right -> radio_list @ [ "P-Op-RB"; "P-TextOp-right" ]
  | Pattern.Text_op_checkbox ->
    checkbox_list @ [ "P-Op-CB"; "P-TextOp-below" ]
  | Pattern.Text_op_select_left -> [ "P-OpSel"; "P-Op-Sel"; "P-TextOp-opleft" ]
  | Pattern.Text_op_select_right -> [ "P-OpSel"; "P-Op-Sel"; "P-TextOp-right" ]
  | Pattern.Range_text_from_to ->
    [ "P-AttrBound"; "P-BoundWord"; "P-BoundVal"; "P-RangeBody-h";
      "P-RangeBody-v"; "P-RangeCP-combined"; "P-RangeCP-left";
      "P-RangeCP-above" ]
  | Pattern.Range_text_to_only ->
    [ "P-BoundWord"; "P-BoundVal"; "P-RangeBody-valfirst"; "P-RangeCP-left";
      "P-RangeCP-above" ]
  | Pattern.Range_select ->
    [ "P-AttrBound"; "P-BoundWord"; "P-BoundSel"; "P-RangeSelBody-h";
      "P-RangeSelBody-v"; "P-RangeSelCP-combined"; "P-RangeSelCP-left";
      "P-RangeSelCP-above" ]
  | Pattern.Date_mdy -> [ "P-DateBody-3"; "P-DateCP-left"; "P-DateCP-above" ]
  | Pattern.Date_my | Pattern.Time_sel ->
    [ "P-DateBody-2"; "P-DateCP-left"; "P-DateCP-above" ]
  | Pattern.Keyword_bare -> [ "P-KeywordCP" ]
  | Pattern.Oog_attr_right_text | Pattern.Oog_attr_right_select
  | Pattern.Oog_image_label | Pattern.Oog_double_box ->
    []

let grammar_for_patterns patterns =
  let std = Wqi_stdgrammar.Std.grammar in
  let wanted = Hashtbl.create 64 in
  List.iter (fun n -> Hashtbl.replace wanted n ()) base_productions;
  List.iter
    (fun p -> List.iter (fun n -> Hashtbl.replace wanted n ()) (productions_for p))
    patterns;
  let selected =
    List.filter
      (fun (p : G.Production.t) -> Hashtbl.mem wanted p.name)
      std.productions
  in
  (* CP alternatives are kept only for surviving pattern symbols. *)
  let heads =
    List.fold_left
      (fun acc (p : G.Production.t) -> G.Symbol.Set.add p.head acc)
      G.Symbol.Set.empty selected
  in
  let cp_productions =
    List.filter
      (fun (p : G.Production.t) ->
         G.Symbol.equal p.head (G.Symbol.nonterminal "CP")
         && List.for_all
              (fun c -> G.Symbol.is_terminal c || G.Symbol.Set.mem c heads)
              p.components)
      std.productions
  in
  let selected = selected @ cp_productions in
  (* Iteratively drop productions whose nonterminal components have no
     production, then preferences over vanished symbols. *)
  let rec prune productions =
    let heads =
      List.fold_left
        (fun acc (p : G.Production.t) -> G.Symbol.Set.add p.head acc)
        G.Symbol.Set.empty productions
    in
    let kept =
      List.filter
        (fun (p : G.Production.t) ->
           List.for_all
             (fun c -> G.Symbol.is_terminal c || G.Symbol.Set.mem c heads)
             p.components)
        productions
    in
    if List.length kept = List.length productions then productions
    else prune kept
  in
  let productions = prune selected in
  let heads =
    List.fold_left
      (fun acc (p : G.Production.t) -> G.Symbol.Set.add p.head acc)
      G.Symbol.Set.empty productions
  in
  let preferences =
    List.filter
      (fun (r : G.Preference.t) ->
         G.Symbol.Set.mem r.winner heads && G.Symbol.Set.mem r.loser heads)
      std.preferences
  in
  G.Grammar.make ~terminals:std.terminals ~start:std.start ~productions
    ~preferences ()

let grammar_from_sources sources =
  grammar_for_patterns
    (List.sort_uniq compare
       (List.concat_map
          (fun (s : Wqi_corpus.Generator.source) -> s.patterns)
          sources))
