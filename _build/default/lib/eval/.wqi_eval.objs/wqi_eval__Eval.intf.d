lib/eval/eval.mli: Format Wqi_corpus Wqi_metrics Wqi_model
