lib/eval/derive.ml: Hashtbl List Wqi_corpus Wqi_grammar Wqi_stdgrammar
