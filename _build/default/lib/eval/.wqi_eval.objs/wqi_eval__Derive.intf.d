lib/eval/derive.mli: Wqi_corpus Wqi_grammar
