lib/eval/eval.ml: Fmt List Unix Wqi_core Wqi_corpus Wqi_metrics Wqi_model
