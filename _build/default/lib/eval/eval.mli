(** Experiment driver: run an extractor over a dataset and score it.

    Produces everything Figure 15 needs: per-source precision/recall,
    their distributions and averages, and the aggregated overall
    metric. *)

type source_result = {
  source : Wqi_corpus.Generator.source;
  extracted : Wqi_model.Condition.t list;
  counts : Wqi_metrics.Metrics.counts;
  precision : float;
  recall : float;
  seconds : float;
}

type report = {
  dataset : string;
  results : source_result list;
  avg_precision : float;   (** mean per-source precision *)
  avg_recall : float;
  overall : Wqi_metrics.Metrics.counts;
  overall_precision : float;  (** Pa over aggregated conditions *)
  overall_recall : float;     (** Ra over aggregated conditions *)
}

val parser_extract : string -> Wqi_model.Condition.t list
(** The full form extractor with the derived global grammar. *)

val run :
  ?extract:(string -> Wqi_model.Condition.t list) ->
  Wqi_corpus.Dataset.t ->
  report
(** [run dataset] scores [extract] (default {!parser_extract}) on every
    source. *)

val precision_distribution : report -> (float * float) list
(** Figure 15(a) series for this dataset: thresholds
    [1.0; 0.9; 0.8; 0.7; 0.6; 0.0] against percentage of sources. *)

val recall_distribution : report -> (float * float) list

val pp_report : Format.formatter -> report -> unit
