(** Pairwise proximity/alignment baseline extractor.

    Implements the heuristic association strategy of the related work the
    paper contrasts with (Raghavan & Garcia-Molina's hidden-web crawler
    [21], Section 2): each form field is paired with the closest text to
    its left or above, radio/checkbox groups are recovered from the HTML
    [name] attribute, and every widget becomes its own condition.  No
    operator extraction, no composite domains (ranges, dates), no global
    interpretation — exactly the gaps the parsing paradigm closes. *)

val extract_tokens : Wqi_token.Token.t list -> Wqi_model.Condition.t list

val extract : ?width:int -> string -> Wqi_model.Condition.t list
(** [extract html] tokenizes with the shared front-end and associates
    pairwise. *)
