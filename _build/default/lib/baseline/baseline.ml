module Token = Wqi_token.Token
module Geometry = Wqi_layout.Geometry
module Condition = Wqi_model.Condition

(* Closest text token left of or above the box, within loose thresholds;
   ties broken by Euclidean center distance. *)
let nearest_label texts box =
  let candidates =
    List.filter
      (fun (t : Token.t) ->
         Geometry.left_of ~max_gap:100 t.box box
         || Geometry.above ~max_gap:60 t.box box)
      texts
  in
  match candidates with
  | [] -> None
  | _ ->
    Some
      (List.fold_left
         (fun best (t : Token.t) ->
            match best with
            | None -> Some t
            | Some b ->
              if Geometry.distance t.box box < Geometry.distance b.Token.box box
              then Some t
              else best)
         None candidates
       |> Option.get)

(* The text immediately right of a radio/checkbox is its value label. *)
let value_label texts (button : Token.t) =
  let candidates =
    List.filter
      (fun (t : Token.t) -> Geometry.left_of ~max_gap:30 button.box t.box)
      texts
  in
  List.fold_left
    (fun best (t : Token.t) ->
       match best with
       | None -> Some t
       | Some b ->
         if Geometry.distance t.box button.box
            < Geometry.distance b.Token.box button.box
         then Some t
         else best)
    None candidates

let extract_tokens tokens =
  let texts =
    List.filter (fun (t : Token.t) -> t.kind = Token.Text) tokens
  in
  let label_or_empty box =
    match nearest_label texts box with
    | Some t -> t.sval
    | None -> ""
  in
  (* Group radios and checkboxes by their form-field name. *)
  let groups : (string, Token.t list) Hashtbl.t = Hashtbl.create 16 in
  let group_order = ref [] in
  List.iter
    (fun (t : Token.t) ->
       match t.kind with
       | Token.Radio | Token.Checkbox ->
         let key = Token.kind_name t.kind ^ ":" ^ t.name in
         if not (Hashtbl.mem groups key) then
           group_order := key :: !group_order;
         Hashtbl.replace groups key
           (t :: Option.value ~default:[] (Hashtbl.find_opt groups key))
       | _ -> ())
    tokens;
  let simple =
    List.filter_map
      (fun (t : Token.t) ->
         match t.kind with
         | Token.Textbox ->
           Some (Condition.make ~attribute:(label_or_empty t.box) Condition.Text)
         | Token.Selection ->
           Some
             (Condition.make ~attribute:(label_or_empty t.box)
                (Condition.Enumeration t.options))
         | Token.Radio | Token.Checkbox | Token.Text | Token.Button
         | Token.Image ->
           None)
      tokens
  in
  let grouped =
    List.rev_map
      (fun key ->
         let buttons = List.rev (Hashtbl.find groups key) in
         let labels =
           List.map
             (fun b ->
                match value_label texts b with
                | Some t -> t.Token.sval
                | None -> "")
             buttons
         in
         let group_box =
           Geometry.union_all (List.map (fun (b : Token.t) -> b.box) buttons)
         in
         (* The group's attribute: the closest label text that is not one
            of the per-button value labels. *)
         let value_texts =
           List.filter_map (fun b -> value_label texts b) buttons
         in
         let attr_candidates =
           List.filter
             (fun (t : Token.t) ->
                not (List.exists (fun (v : Token.t) -> v.id = t.id) value_texts))
             texts
         in
         let attribute =
           match nearest_label attr_candidates group_box with
           | Some t -> t.sval
           | None -> ""
         in
         Condition.make ~attribute (Condition.Enumeration labels))
      !group_order
  in
  simple @ grouped

let extract ?width html = extract_tokens (Wqi_token.Tokenize.of_html ?width html)
