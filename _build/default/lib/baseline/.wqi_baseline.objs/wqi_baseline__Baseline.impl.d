lib/baseline/baseline.ml: Hashtbl List Option Wqi_layout Wqi_model Wqi_token
