lib/baseline/baseline.mli: Wqi_model Wqi_token
