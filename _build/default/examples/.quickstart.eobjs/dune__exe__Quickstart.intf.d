examples/quickstart.mli:
