examples/custom_grammar.ml: Array Format List String Wqi_grammar Wqi_parser Wqi_token
