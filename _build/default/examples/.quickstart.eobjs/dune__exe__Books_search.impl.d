examples/books_search.ml: Format List String Wqi_core Wqi_grammar Wqi_model Wqi_token
