examples/unified_interface.ml: Format List Printf String Wqi_core Wqi_corpus Wqi_html Wqi_layout Wqi_match Wqi_model
