examples/dataset_tour.ml: Format List String Wqi_baseline Wqi_core Wqi_corpus Wqi_eval Wqi_metrics Wqi_model
