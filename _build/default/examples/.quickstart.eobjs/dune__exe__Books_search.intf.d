examples/books_search.mli:
