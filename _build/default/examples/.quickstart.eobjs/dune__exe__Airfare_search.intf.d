examples/airfare_search.mli:
