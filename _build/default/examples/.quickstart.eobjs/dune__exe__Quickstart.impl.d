examples/quickstart.ml: Format List String Wqi_core Wqi_model
