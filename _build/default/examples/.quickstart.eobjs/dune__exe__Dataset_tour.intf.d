examples/dataset_tour.mli:
