examples/custom_grammar.mli:
