examples/airfare_search.ml: Format List Wqi_core Wqi_model
