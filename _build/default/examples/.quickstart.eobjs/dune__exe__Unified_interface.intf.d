examples/unified_interface.mli:
