(* Building a unified query interface for a domain — the last of the
   motivating applications in the paper's introduction ("to build
   unified query interfaces").

   Pipeline: extract the schemas of several Books sources, unify them
   into one merged schema, *emit the unified interface as HTML*, and —
   the dogfooding finale — run the extractor on our own generated
   markup to confirm the unified form round-trips.

   Run with: dune exec examples/unified_interface.exe *)

module Dom = Wqi_html.Dom
module Condition = Wqi_model.Condition
module Match = Wqi_match.Interface_match

let el = Dom.element
let txt = Dom.text

(* Render a unified condition back to form markup. *)
let markup_of_condition index (c : Condition.t) =
  let name prefix = Printf.sprintf "%s_%d" prefix index in
  let field =
    match c.domain with
    | Condition.Text ->
      [ el "input" ~attrs:[ ("type", "text"); ("name", name "t") ] [] ]
    | Condition.Enumeration values ->
      [ el "select"
          ~attrs:[ ("name", name "s") ]
          (List.map (fun v -> el "option" [ txt v ]) values) ]
    | Condition.Range _ ->
      [ txt " from ";
        el "input" ~attrs:[ ("type", "text"); ("name", name "lo"); ("size", "8") ] [];
        txt " to ";
        el "input" ~attrs:[ ("type", "text"); ("name", name "hi"); ("size", "8") ] [] ]
    | Condition.Datetime ->
      let sel n options =
        el "select" ~attrs:[ ("name", name n) ]
          (List.map (fun v -> el "option" [ txt v ]) options)
      in
      [ sel "m" [ "January"; "February"; "March"; "April"; "May"; "June";
                  "July"; "August"; "September"; "October"; "November";
                  "December" ];
        sel "d" (List.init 31 (fun i -> string_of_int (i + 1)));
        sel "y" [ "2004"; "2005"; "2006" ] ]
  in
  el "tr" [ el "td" ((txt (c.attribute ^ " ") :: field)) ]

let () =
  (* 1. Extract schemas from several generated Books sources. *)
  let g = Wqi_corpus.Prng.create 0xB00C5L in
  let domain = Wqi_corpus.Vocabulary.find "Books" in
  let sources =
    List.init 6 (fun i ->
        Wqi_corpus.Generator.generate g
          ~id:(Printf.sprintf "books-%d" i)
          ~domain ~complexity:`Rich ~oog_prob:0. ())
  in
  let schemas =
    List.map
      (fun (s : Wqi_corpus.Generator.source) ->
         { Match.source = s.id;
           conditions =
             Wqi_core.Extractor.conditions (Wqi_core.Extractor.extract s.html) })
      sources
  in
  Format.printf "== Input schemas ==@.";
  List.iter
    (fun (s : Match.schema) ->
       Format.printf "  %-10s %s@." s.source
         (String.concat ", "
            (List.map
               (fun (c : Condition.t) -> Condition.normalize_label c.attribute)
               s.conditions)))
    schemas;

  (* 2. Unify. *)
  let unified = Match.unify schemas in
  Format.printf "@.== Unified schema (with source support) ==@.";
  List.iter
    (fun (c, support) ->
       Format.printf "  %d/%d  %a@." support (List.length schemas)
         Condition.pp c)
    unified;

  (* 3. Emit the unified interface as HTML (keep well-supported
     conditions only). *)
  let kept =
    List.filter (fun (_, support) -> support >= 2) unified
  in
  let form =
    el "form"
      ~attrs:[ ("action", "/unified-search") ]
      [ el "h2" [ txt "Unified book search" ];
        el "table" (List.mapi (fun i (c, _) -> markup_of_condition i c) kept);
        el "input" ~attrs:[ ("type", "submit"); ("value", "Search all sources") ] [] ]
  in
  let html = Wqi_html.Printer.to_string form in
  Format.printf "@.== Generated unified interface (%d bytes of HTML) ==@."
    (String.length html);
  print_string (Wqi_layout.Debug.ascii_of_html html);

  (* 4. Dogfood: extract our own unified interface. *)
  let roundtrip = Wqi_core.Extractor.extract html in
  Format.printf "@.== Re-extracted from the generated markup ==@.";
  List.iter
    (fun c -> Format.printf "  %a@." Condition.pp c)
    (Wqi_core.Extractor.conditions roundtrip);
  Format.printf "(%d unified conditions emitted, %d re-extracted)@."
    (List.length kept)
    (List.length (Wqi_core.Extractor.conditions roundtrip))
