(* An airfare interface in the style of the paper's Figure 3(b)
   (aa.com): city pair, composite dates, passenger counts and cabin
   class.  Demonstrates composite-domain extraction (datetime from
   month/day/year selects) and the merger's error reporting on an
   ambiguous fragment (the paper's "number of passengers vs adults"
   conflict, Section 3.4).

   Run with: dune exec examples/airfare_search.exe *)

let aa = {|
<form>
<table>
<tr><td>From:</td><td><input type="text" name="orig" size="12"></td>
    <td>To:</td><td><input type="text" name="dest" size="12"></td></tr>
<tr><td>Departing:</td><td colspan="3">
  <select name="dm"><option>January</option><option>February</option><option>March</option>
  <option>April</option><option>May</option><option>June</option><option>July</option>
  <option>August</option><option>September</option><option>October</option>
  <option>November</option><option>December</option></select>
  <select name="dd"><option>1</option><option>2</option><option>3</option><option>15</option><option>28</option><option>31</option></select>
  <select name="dy"><option>2004</option><option>2005</option></select>
</td></tr>
<tr><td>Returning:</td><td colspan="3">
  <select name="rm"><option>January</option><option>June</option><option>December</option></select>
  <select name="rd"><option>1</option><option>15</option><option>31</option></select>
  <select name="ry"><option>2004</option><option>2005</option></select>
</td></tr>
<tr><td>Cabin:</td><td colspan="3">
  <input type="radio" name="cabin" checked> Economy
  <input type="radio" name="cabin"> Business
  <input type="radio" name="cabin"> First
</td></tr>
<tr><td>Adults:</td><td><select name="ad"><option>1</option><option>2</option>
  <option>3</option><option>4</option><option>5</option><option>6</option></select></td>
    <td>Children:</td><td><select name="ch"><option>0</option><option>1</option>
  <option>2</option><option>3</option></select></td></tr>
</table>
<input type="submit" value="Find flights">
</form>|}

let () =
  let e = Wqi_core.Extractor.extract aa in
  Format.printf "== Extracted query capabilities ==@.%a@."
    Wqi_model.Semantic_model.pp e.model;

  Format.printf "@.== Composite domains ==@.";
  List.iter
    (fun (c : Wqi_model.Condition.t) ->
       match c.domain with
       | Wqi_model.Condition.Datetime ->
         Format.printf
           "  %-12s three selection lists grouped into one datetime@."
           c.attribute
       | Wqi_model.Condition.Range _ ->
         Format.printf "  %-12s recognized as a range@." c.attribute
       | Wqi_model.Condition.Text | Wqi_model.Condition.Enumeration _ -> ())
    (Wqi_core.Extractor.conditions e);

  (* A deliberately confusing fragment: "Number of passengers" sits right
     above "Adults", and both plausibly own the selection list — the
     exact conflict the paper's merger reports for aa.com. *)
  let confusing = {|
<form>
<p>Number of passengers</p>
<p>Adults <select name="n"><option>1</option><option>2</option><option>3</option></select></p>
</form>|}
  in
  let e2 = Wqi_core.Extractor.extract confusing in
  Format.printf "@.== Conflict-prone fragment ==@.%a@."
    Wqi_model.Semantic_model.pp e2.model;
  if e2.model.errors = [] then
    Format.printf
      "(the association preferences resolved the conflict silently)@."
