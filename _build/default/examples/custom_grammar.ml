(* Section 7 of the paper suggests the best-effort parsing framework
   generalizes beyond query forms: "by designing a grammar that captures
   such structure regularities, we can employ our parsing framework to
   extract the services available in E-commerce Web sites" — e.g. the
   navigational menus regularly arranged on the left-hand side of entry
   pages.

   This example builds exactly that: a tiny custom 2P grammar for
   left-column navigation menus, run through the *same* parser engine
   and front-end — no parsing machinery is touched, only the grammar
   (the extensibility claim of Section 4.1).

   Run with: dune exec examples/custom_grammar.exe *)

module G = Wqi_grammar
module Symbol = G.Symbol
module Instance = G.Instance
module Production = G.Production
module Preference = G.Preference
module R = G.Relation

let t_text = Symbol.terminal "text"
let t_image = Symbol.terminal "image"
let item = Symbol.nonterminal "MenuItem"
let menu = Symbol.nonterminal "Menu"
let page = Symbol.nonterminal "Page"

let tok_sval (i : Instance.t) =
  match i.token with Some t -> t.Wqi_token.Token.sval | None -> ""

let labels_of (i : Instance.t) =
  match i.sem with Instance.S_ops l -> l | _ -> []

(* A menu item is a short, link-like text. *)
let short_label s =
  let words =
    List.filter (( <> ) "") (String.split_on_char ' ' (String.trim s))
  in
  words <> [] && List.length words <= 3 && String.length s <= 30

let nav_grammar =
  G.Grammar.make
    ~terminals:[ t_text; t_image ]
    ~start:page
    ~productions:
      [ Production.make ~name:"item" ~head:item ~components:[ t_text ]
          ~guard:(fun arr -> short_label (tok_sval arr.(0)))
          ~build:(fun arr -> Instance.S_ops [ tok_sval arr.(0) ])
          ();
        (* A menu is a left-aligned vertical stack of items. *)
        Production.make ~name:"menu-base" ~head:menu ~components:[ item ]
          ~build:(fun arr -> Instance.S_ops (labels_of arr.(0)))
          ();
        Production.make ~name:"menu-grow" ~head:menu
          ~components:[ menu; item ]
          ~guard:(fun arr ->
              R.above ~max_gap:24 arr.(0) arr.(1)
              && R.left_aligned ~tolerance:8 arr.(0) arr.(1))
          ~build:(fun arr ->
              Instance.S_ops (labels_of arr.(0) @ labels_of arr.(1)))
          ();
        Production.make ~name:"page" ~head:page ~components:[ menu ]
          ~guard:(fun arr -> List.length (labels_of arr.(0)) >= 3)
          ~build:(fun arr -> Instance.S_ops (labels_of arr.(0)))
          () ]
    ~preferences:
      [ (* The longest stack wins — the same R2 convention as RBList. *)
        Preference.make ~name:"longest-menu" ~winner:menu ~loser:menu
          ~conflict:(fun a b -> Instance.subsumes a b)
          ~wins:(fun a b ->
              G.Bitset.cardinal a.Instance.cover
              > G.Bitset.cardinal b.Instance.cover)
          () ]
    ()

(* An e-commerce entry page: a navigation column on the left, prose on
   the right. *)
let entry_page = {|
<table>
<tr>
<td>
  <b>Departments</b><br>
  Books<br>
  Music<br>
  Electronics<br>
  Toys and Games<br>
  Home and Garden<br>
  Gift Certificates
</td>
<td>
  <h2>Welcome to our store</h2>
  <p>We offer the best selection of products at everyday low prices,
  with free shipping on qualified orders and easy returns within
  thirty days of purchase.</p>
</td>
</tr>
</table>|}

let () =
  let tokens = Wqi_token.Tokenize.of_html entry_page in
  let result = Wqi_parser.Engine.parse nav_grammar tokens in
  Format.printf "tokens: %d; instances created: %d@." (List.length tokens)
    result.Wqi_parser.Engine.stats.created;
  List.iter
    (fun (tree : Instance.t) ->
       if Symbol.equal tree.sym page then begin
         Format.printf "@.Navigation menu found (%d services):@."
           (List.length (labels_of tree));
         List.iter (Format.printf "  - %s@.") (labels_of tree)
       end)
    result.Wqi_parser.Engine.maximal;
  (* The prose on the right never assembles into a menu: its lines are
     neither short nor consistently left-aligned with each other as
     items — the grammar, not ad-hoc code, makes that judgement. *)
  Format.printf "@.(maximal trees: %d; the prose column stays unparsed)@."
    (List.length result.Wqi_parser.Engine.maximal)
