(* Quickstart: extract the query capabilities of an HTML form in three
   lines of code.

   Run with: dune exec examples/quickstart.exe *)

let form = {|
<form action="/search">
  <h3>Book search</h3>
  <table>
    <tr><td>Author:</td><td><input type="text" name="author"></td></tr>
    <tr><td>Title:</td><td><input type="text" name="title"></td></tr>
    <tr><td>Format:</td>
        <td><select name="format">
              <option>Hardcover</option><option>Paperback</option>
              <option>Audio</option>
            </select></td></tr>
    <tr><td></td><td><input type="submit" value="Search"></td></tr>
  </table>
</form>|}

let () =
  (* The whole pipeline — HTML parsing, layout, tokenization, best-effort
     2P parsing, merging — behind one call: *)
  let extraction = Wqi_core.Extractor.extract form in

  Format.printf "This interface supports %d query conditions:@."
    (List.length (Wqi_core.Extractor.conditions extraction));
  List.iter
    (fun condition ->
       Format.printf "  %a@." Wqi_model.Condition.pp condition)
    (Wqi_core.Extractor.conditions extraction);

  (* Each condition is a typed value you can program against. *)
  List.iter
    (fun (c : Wqi_model.Condition.t) ->
       match c.domain with
       | Wqi_model.Condition.Enumeration values ->
         Format.printf "-> %s accepts one of: %s@." c.attribute
           (String.concat " | " values)
       | Wqi_model.Condition.Text ->
         Format.printf "-> %s accepts free text@." c.attribute
       | Wqi_model.Condition.Range _ | Wqi_model.Condition.Datetime -> ())
    (Wqi_core.Extractor.conditions extraction)
