(* The paper's flagship example (Figure 3(a)): the amazon.com book search
   interface, whose author condition couples a textbox with three radio
   buttons that act as *operators*, not values.

   This example shows the full anatomy of an extraction: tokens, the
   parse tree the best-effort parser settles on, and the resulting
   semantic model.

   Run with: dune exec examples/books_search.exe *)

let amazon = {|
<form>
<b>Search books</b>
<table>
<tr><td>Author:</td><td><input type="text" name="field-author" size="20"></td></tr>
<tr><td></td><td>
  <input type="radio" name="author-mode" checked> First name/initials and last name<br>
  <input type="radio" name="author-mode"> Start of last name<br>
  <input type="radio" name="author-mode"> Exact name
</td></tr>
<tr><td>Title:</td><td><input type="text" name="field-title" size="20"></td></tr>
<tr><td></td><td>
  <input type="radio" name="title-mode" checked> Title word(s)<br>
  <input type="radio" name="title-mode"> Start(s) of title word(s)<br>
  <input type="radio" name="title-mode"> Exact start of title
</td></tr>
<tr><td>Subject:</td><td><input type="text" name="field-subject"></td></tr>
<tr><td>ISBN:</td><td><input type="text" name="field-isbn"></td></tr>
<tr><td>Publisher:</td><td><input type="text" name="field-publisher"></td></tr>
<tr><td>Price:</td><td><select name="price">
  <option>any price</option><option>under $5</option>
  <option>$5 to $20</option><option>above $20</option></select></td></tr>
</table>
<input type="submit" value="Search Now">
</form>|}

let () =
  let e = Wqi_core.Extractor.extract amazon in

  Format.printf "== Tokens (the visual language's terminals) ==@.";
  List.iter (fun t -> Format.printf "  %a@." Wqi_token.Token.pp t) e.tokens;

  Format.printf "@.== Maximal parse tree(s) ==@.";
  List.iter
    (fun tree -> Format.printf "%a@." Wqi_grammar.Instance.pp_tree tree)
    e.trees;

  Format.printf "@.== Semantic model ==@.%a@." Wqi_model.Semantic_model.pp
    e.model;

  Format.printf "@.== How the author condition reads ==@.";
  List.iter
    (fun (c : Wqi_model.Condition.t) ->
       if Wqi_model.Condition.normalize_label c.attribute = "author" then begin
         Format.printf "attribute : %s@." c.attribute;
         Format.printf "operators : %s@." (String.concat " | " c.operators);
         Format.printf "domain    : %a@." Wqi_model.Condition.pp_domain
           c.domain
       end)
    (Wqi_core.Extractor.conditions e);

  let d = e.diagnostics in
  Format.printf
    "@.(%d tokens; %d instances created, %d pruned by preferences; \
     complete parse: %b)@."
    d.token_count d.parse_stats.created d.parse_stats.pruned d.complete;

  (* Close the loop: formulate the constraint from the paper's intro,
     [author = "tom clancy"] with the "Exact name" operator, as actual
     form-submission parameters. *)
  Format.printf "@.== Formulating [author = \"tom clancy\"; exact name] ==@.";
  (match
     Wqi_core.Formulate.formulate e
       [ { Wqi_core.Formulate.attribute = "Author";
           operator = Some "Exact name"; values = [ "tom clancy" ] } ]
   with
   | Ok params ->
     List.iter (fun (k, v) -> Format.printf "  %s=%s@." k v) params
   | Error message -> Format.printf "  error: %s@." message)
