(* A tour of the experimental infrastructure: generate the four
   datasets, peek at a source, run the extractor over one dataset, and
   compare against the proximity baseline — a miniature of the full
   bench harness.

   Run with: dune exec examples/dataset_tour.exe *)

module Dataset = Wqi_corpus.Dataset
module Generator = Wqi_corpus.Generator
module Eval = Wqi_eval.Eval
module Metrics = Wqi_metrics.Metrics

let () =
  (* Datasets are deterministic: every run regenerates the same 252
     sources the experiments use. *)
  let ds = Dataset.new_source () in
  Format.printf "dataset %s: %d sources@." ds.name (List.length ds.sources);

  let sample = List.nth ds.sources 3 in
  Format.printf "@.== sample source %s (%s) ==@." sample.id sample.domain;
  Format.printf "ground truth:@.";
  List.iter
    (fun c -> Format.printf "  %a@." Wqi_model.Condition.pp c)
    sample.truth;
  Format.printf "markup size: %d bytes; patterns used: %s@."
    (String.length sample.html)
    (String.concat ", "
       (List.map Wqi_corpus.Pattern.name sample.patterns));

  Format.printf "@.== extractor vs ground truth on this source ==@.";
  let extracted =
    Wqi_core.Extractor.conditions (Wqi_core.Extractor.extract sample.html)
  in
  List.iter (fun c -> Format.printf "  %a@." Wqi_model.Condition.pp c) extracted;
  let counts = Metrics.count ~truth:sample.truth ~extracted in
  Format.printf "precision %.2f, recall %.2f@."
    (Metrics.precision counts) (Metrics.recall counts);

  Format.printf "@.== whole-dataset scores ==@.";
  let parser_report = Eval.run ds in
  let baseline_report =
    Eval.run ~extract:Wqi_baseline.Baseline.extract ds
  in
  Format.printf "parser   : %a@." Eval.pp_report parser_report;
  Format.printf "baseline : %a@." Eval.pp_report baseline_report;

  Format.printf "@.== slowest sources (parsing dominates) ==@.";
  parser_report.results
  |> List.sort (fun (a : Eval.source_result) b -> compare b.seconds a.seconds)
  |> List.filteri (fun i _ -> i < 3)
  |> List.iter (fun (r : Eval.source_result) ->
      Format.printf "  %-24s %5.1f ms  (%d conditions)@." r.source.id
        (1000. *. r.seconds)
        (List.length r.source.truth))
