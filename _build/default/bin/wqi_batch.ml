(* Batch extractor: run the form extractor over every .html file in a
   directory (e.g. one produced by wqi_corpus_gen) and emit one JSON
   source description per line, plus a human summary on stderr.

   This is the mediator-bootstrap workflow the paper motivates: crawl a
   directory of query interfaces, get machine-readable capability
   descriptions out. *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let run dir output =
  if not (Sys.file_exists dir && Sys.is_directory dir) then begin
    Format.eprintf "%s is not a directory@." dir;
    1
  end
  else begin
    let files =
      Sys.readdir dir |> Array.to_list
      |> List.filter (fun f -> Filename.check_suffix f ".html")
      |> List.sort compare
    in
    let oc =
      match output with Some path -> open_out path | None -> stdout
    in
    let total_conditions = ref 0 in
    let total_seconds = ref 0. in
    let with_errors = ref 0 in
    List.iter
      (fun file ->
         let html = read_file (Filename.concat dir file) in
         let t0 = Unix.gettimeofday () in
         let e = Wqi_core.Extractor.extract html in
         total_seconds := !total_seconds +. (Unix.gettimeofday () -. t0);
         let model = e.Wqi_core.Extractor.model in
         total_conditions :=
           !total_conditions + List.length model.Wqi_model.Semantic_model.conditions;
         if model.Wqi_model.Semantic_model.errors <> [] then incr with_errors;
         output_string oc
           (Wqi_model.Export.source_description
              ~name:(Filename.remove_extension file)
              model);
         output_char oc '\n')
      files;
    if output <> None then close_out oc;
    Format.eprintf
      "%d interfaces, %d conditions extracted, %d with error reports, \
       %.2f s total@."
      (List.length files) !total_conditions !with_errors !total_seconds;
    if files = [] then 1 else 0
  end

open Cmdliner

let dir =
  let doc = "Directory of .html query interfaces." in
  Arg.(required & pos 0 (some dir) None & info [] ~docv:"DIR" ~doc)

let output =
  let doc = "Write JSONL here instead of stdout." in
  Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc)

let cmd =
  let doc = "extract capabilities from a directory of query interfaces" in
  let term = Term.(const run $ dir $ output) in
  Cmd.v (Cmd.info "wqi_batch" ~version:"1.0.0" ~doc) term

let () = exit (Cmd.eval' cmd)
