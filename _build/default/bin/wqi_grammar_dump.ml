(* Print the derived global 2P grammar: symbol inventory, productions,
   preferences, and the 2P schedule (instantiation order, transformed
   and relaxed r-edges) — the analog of the paper's statement that "the
   grammar is available online". *)

let () =
  let g = Wqi_stdgrammar.Std.grammar in
  let terminals, nonterminals, productions, preferences =
    Wqi_grammar.Grammar.stats g
  in
  Format.printf
    "derived global 2P grammar: %d terminals, %d nonterminals, %d \
     productions, %d preferences@.@."
    terminals nonterminals productions preferences;
  Format.printf "%a@.@." Wqi_grammar.Grammar.pp g;
  let schedule = Wqi_grammar.Schedule.build g in
  Format.printf "2P schedule:@.%a@." Wqi_grammar.Schedule.pp schedule
