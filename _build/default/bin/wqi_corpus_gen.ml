(* Command-line dataset generator: write the four experimental datasets
   (HTML sources plus ground-truth manifests) to a directory. *)

let run dir names =
  let all = Wqi_corpus.Dataset.all () in
  let selected =
    match names with
    | [] -> all
    | names ->
      List.filter
        (fun (d : Wqi_corpus.Dataset.t) ->
           List.mem (String.lowercase_ascii d.name) names)
        all
  in
  if selected = [] then begin
    Format.eprintf "no dataset matches; available: %s@."
      (String.concat ", "
         (List.map (fun (d : Wqi_corpus.Dataset.t) -> d.name) all));
    1
  end
  else begin
    List.iter
      (fun (d : Wqi_corpus.Dataset.t) ->
         Wqi_corpus.Dataset.save ~dir d;
         Format.printf "wrote %s (%d sources) under %s@." d.name
           (List.length d.sources)
           (Filename.concat dir d.name))
      selected;
    0
  end

open Cmdliner

let dir =
  let doc = "Output directory." in
  Arg.(value & opt string "corpus" & info [ "o"; "output" ] ~docv:"DIR" ~doc)

let names =
  let doc =
    "Datasets to generate (basic, newsource, newdomain, random); all when \
     omitted."
  in
  Arg.(value & pos_all string [] & info [] ~docv:"DATASET" ~doc)

let cmd =
  let doc = "generate the synthetic query-interface datasets" in
  let term = Term.(const run $ dir $ names) in
  Cmd.v (Cmd.info "wqi_corpus_gen" ~version:"1.0.0" ~doc) term

let () = exit (Cmd.eval' cmd)
